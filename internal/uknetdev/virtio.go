package uknetdev

import (
	"fmt"

	"unikraft/internal/sim"
)

// Driver-side per-packet descriptor costs (cycles): building/reaping one
// virtqueue descriptor chain. Zero-copy I/O means no payload copies on
// the guest side (§3.1: "supporting high performance features like
// multiple queues, zero-copy I/O, and packet batching").
const (
	driverTxCycles = 82
	driverRxCycles = 76
	defaultRing    = 256
	defaultMTU     = 1500
)

// VirtioNet is the virtio-net driver attached to a host backend, wired
// to a peer device (the remote end of the cable or the host bridge).
type VirtioNet struct {
	mac     MAC
	machine *sim.Machine
	backend Backend
	tuning  Tuning

	peer *VirtioNet

	rxq, txq []*vring
	started  bool
	stats    Stats

	// dmaPool backs host-side frame snapshots for unmanaged TX buffers,
	// so even the compatibility path allocates nothing per frame once
	// warmed up.
	dmaPool *NetbufPool
}

// vring is one virtqueue: a fixed-capacity ring of waiting packets plus
// the interrupt line state. Descriptors are netbuf pointers; push/pop
// never allocate. Each ring carries its own clock (the vCPU that polls
// it) and its own kick-coalescing remainder, so multi-queue devices
// charge driver work to the core actually doing it.
type vring struct {
	buf     []*Netbuf
	head    int
	count   int
	intr    func()
	armed   bool
	machine *sim.Machine
	// unkicked counts frames enqueued on this queue since the last host
	// notification; a kick is charged once it reaches the TxKickBatch.
	unkicked int
}

func newVring(capacity int, intr func(), m *sim.Machine) *vring {
	return &vring{buf: make([]*Netbuf, capacity), intr: intr, machine: m}
}

func (r *vring) push(nb *Netbuf) bool {
	if r.count == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = nb
	r.count++
	return true
}

func (r *vring) pop() *Netbuf {
	nb := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return nb
}

// NewVirtioNet creates an unconfigured device on machine m using the
// given host backend. Wire two devices together with Connect.
func NewVirtioNet(m *sim.Machine, mac MAC, b Backend) *VirtioNet {
	return &VirtioNet{
		mac: mac, machine: m, backend: b,
		dmaPool: NewNetbufPool(0, defaultMTU+548, 0),
	}
}

// SetTuning configures kick/IRQ coalescing; call before Start.
func (d *VirtioNet) SetTuning(t Tuning) { d.tuning = t }

// TuningInfo reports the active coalescing configuration.
func (d *VirtioNet) TuningInfo() Tuning { return d.tuning }

// Connect cross-wires two devices (a direct cable, as in the paper's
// DPDK experiment setup, or the host bridge path).
func Connect(a, b *VirtioNet) {
	a.peer, b.peer = b, a
}

// Info implements Device.
func (d *VirtioNet) Info() Info {
	return Info{MaxRxQueues: 8, MaxTxQueues: 8, MaxMTU: defaultMTU, Backend: d.backend.Name}
}

// HWAddr implements Device.
func (d *VirtioNet) HWAddr() MAC { return d.mac }

// Configure implements Device.
func (d *VirtioNet) Configure(rxQueues, txQueues int) error {
	if d.started {
		return fmt.Errorf("uknetdev: Configure after Start")
	}
	info := d.Info()
	if rxQueues < 1 || rxQueues > info.MaxRxQueues || txQueues < 1 || txQueues > info.MaxTxQueues {
		return fmt.Errorf("uknetdev: queue counts %d/%d out of range", rxQueues, txQueues)
	}
	d.rxq = make([]*vring, rxQueues)
	d.txq = make([]*vring, txQueues)
	return nil
}

// RxQueueSetup implements Device.
func (d *VirtioNet) RxQueueSetup(q int, cfg QueueConfig) error {
	if q < 0 || q >= len(d.rxq) {
		return ErrBadQueue
	}
	ring := cfg.Ring
	if ring == 0 {
		ring = defaultRing
	}
	d.rxq[q] = newVring(ring, cfg.IntrHandler, d.queueMachine(cfg))
	return nil
}

// TxQueueSetup implements Device.
func (d *VirtioNet) TxQueueSetup(q int, cfg QueueConfig) error {
	if q < 0 || q >= len(d.txq) {
		return ErrBadQueue
	}
	ring := cfg.Ring
	if ring == 0 {
		ring = defaultRing
	}
	d.txq[q] = newVring(ring, cfg.IntrHandler, d.queueMachine(cfg))
	return nil
}

// queueMachine resolves the clock a queue charges to: its own vCPU when
// QueueConfig.Machine is set, the device machine otherwise (the
// single-core default, bit-identical to the pre-SMP driver).
func (d *VirtioNet) queueMachine(cfg QueueConfig) *sim.Machine {
	if cfg.Machine != nil {
		return cfg.Machine
	}
	return d.machine
}

// Start implements Device.
func (d *VirtioNet) Start() error {
	if len(d.rxq) == 0 || len(d.txq) == 0 {
		return fmt.Errorf("uknetdev: Start before queue setup")
	}
	for i, q := range d.rxq {
		if q == nil {
			return fmt.Errorf("uknetdev: rx queue %d not set up", i)
		}
	}
	for i, q := range d.txq {
		if q == nil {
			return fmt.Errorf("uknetdev: tx queue %d not set up", i)
		}
	}
	d.started = true
	return nil
}

// TxBurst implements Device. The driver charges descriptor costs and the
// (amortized) kick. Pool-managed buffers are handed to the peer by
// reference — the zero-copy path — while unmanaged buffers are
// snapshotted into a recycled DMA buffer, preserving the historical
// "caller may reuse its buffer immediately" contract.
func (d *VirtioNet) TxBurst(q int, pkts []*Netbuf) (int, bool, error) {
	if !d.started {
		return 0, false, ErrDevStopped
	}
	if q < 0 || q >= len(d.txq) {
		return 0, false, ErrBadQueue
	}
	ring := d.txq[q]
	sent := 0
	for _, nb := range pkts {
		if nb.Len > defaultMTU+14 {
			d.stats.TxDrops++
			continue
		}
		ring.machine.Charge(driverTxCycles)
		if d.peer != nil {
			if nb.Pooled() {
				d.stats.ZCPackets++
				d.peer.hostDeliver(nb.Ref())
			} else {
				// DMA snapshot of the frame onto the wire, from the
				// peer's recycled buffer pool.
				snap := d.peer.dmaPool.Get()
				snap.Len = copy(snap.Data[snap.Off:], nb.Bytes())
				d.peer.hostDeliver(snap)
			}
		}
		d.stats.TxPackets++
		d.stats.TxBytes += uint64(nb.Len)
		sent++
	}
	if sent > 0 && d.backend.NeedsKick {
		if batch := d.tuning.txBatch(); batch == 1 {
			// Kick per burst: the calibrated default driver behaviour
			// (one notification covers the whole enqueue).
			ring.machine.Charge(d.backend.KickCycles)
			d.stats.Kicks++
		} else {
			// Coalesced: one kick per full batch of frames, remainder
			// carried to the next burst (or FlushTx). The remainder is
			// per-queue state: each vCPU coalesces its own kicks.
			ring.unkicked += sent
			kicked := false
			for ring.unkicked >= batch {
				ring.machine.Charge(d.backend.KickCycles)
				d.stats.Kicks++
				ring.unkicked -= batch
				kicked = true
			}
			if !kicked {
				d.stats.KicksElided++
			}
		}
	}
	return sent, true, nil
}

// FlushTx implements ZeroCopyDevice: it charges, per TX queue, the kick
// still owed for frames below a full TxKickBatch (the "delayed
// notification" that a real driver would fire from a timer). Callers
// invoke it at quiescence points so coalescing never under-counts VM
// exits by more than a batch per queue.
func (d *VirtioNet) FlushTx() {
	if !d.backend.NeedsKick {
		return
	}
	for _, ring := range d.txq {
		if ring != nil && ring.unkicked > 0 {
			ring.machine.Charge(d.backend.KickCycles)
			d.stats.Kicks++
			ring.unkicked = 0
		}
	}
}

// hostDeliver is the host-side path depositing a frame into this
// device's RX ring. Multi-queue devices steer by RSS hash of the flow
// 4-tuple (see rss.go); single-queue devices skip the parse entirely,
// keeping the calibrated single-core path untouched. It takes ownership
// of one reference on nb.
func (d *VirtioNet) hostDeliver(nb *Netbuf) {
	if !d.started || len(d.rxq) == 0 {
		nb.Release()
		return
	}
	q := d.rxq[0]
	if len(d.rxq) > 1 {
		q = d.rxq[rssSteer(nb.Bytes(), len(d.rxq))]
	}
	if !q.push(nb) {
		d.stats.RxDrops++
		nb.Release()
		return
	}
	d.stats.RxBytes += uint64(nb.Len)
	if q.armed && q.intr != nil {
		if q.count >= d.tuning.rxBatch() {
			// One interrupt per transition past the moderation
			// threshold; the line then stays inactive until re-enabled
			// (storm avoidance, §3.1). The IRQ lands on the queue's own
			// vCPU — per-queue MSI-X vectors, in virtio terms.
			q.armed = false
			d.stats.IRQs++
			q.machine.Charge(d.backend.IRQCycles)
			q.intr()
		} else {
			d.stats.IRQsElided++
		}
	}
}

// RxBurst implements Device: received frames are copied into the
// caller-owned buffers (the application-owns-all-memory contract of
// §3.1); the ring's buffers recycle to their pools.
func (d *VirtioNet) RxBurst(q int, pkts []*Netbuf) (int, bool, error) {
	if !d.started {
		return 0, false, ErrDevStopped
	}
	if q < 0 || q >= len(d.rxq) {
		return 0, false, ErrBadQueue
	}
	ring := d.rxq[q]
	n := 0
	for n < len(pkts) && ring.count > 0 {
		src := ring.pop()
		nb := pkts[n]
		if len(nb.Data)-nb.Off < src.Len {
			d.stats.RxDrops++
			src.Release()
			continue
		}
		ring.machine.Charge(driverRxCycles)
		copy(nb.Data[nb.Off:], src.Bytes()) // DMA wrote the app's buffer
		nb.Len = src.Len
		src.Release()
		d.stats.RxPackets++
		n++
	}
	return n, ring.count > 0, nil
}

// RxBurstZC implements ZeroCopyDevice: ring buffers are handed to the
// caller by reference, no payload copy. The caller owns one reference
// per returned buffer and must Release each when done with it.
func (d *VirtioNet) RxBurstZC(q int, pkts []*Netbuf) (int, bool, error) {
	if !d.started {
		return 0, false, ErrDevStopped
	}
	if q < 0 || q >= len(d.rxq) {
		return 0, false, ErrBadQueue
	}
	ring := d.rxq[q]
	n := 0
	for n < len(pkts) && ring.count > 0 {
		ring.machine.Charge(driverRxCycles)
		pkts[n] = ring.pop()
		d.stats.RxPackets++
		n++
	}
	return n, ring.count > 0, nil
}

// EnableRxInterrupt implements Device.
func (d *VirtioNet) EnableRxInterrupt(q int) error {
	if q < 0 || q >= len(d.rxq) {
		return ErrBadQueue
	}
	ring := d.rxq[q]
	ring.armed = true
	// If work is already pending, fire immediately (level semantics) —
	// re-arming is the moderation flush point, so coalesced stragglers
	// cannot rot in the ring.
	if ring.count > 0 && ring.intr != nil {
		ring.armed = false
		d.stats.IRQs++
		ring.machine.Charge(d.backend.IRQCycles)
		ring.intr()
	}
	return nil
}

// DisableRxInterrupt implements Device.
func (d *VirtioNet) DisableRxInterrupt(q int) error {
	if q < 0 || q >= len(d.rxq) {
		return ErrBadQueue
	}
	d.rxq[q].armed = false
	return nil
}

// Stats implements Device.
func (d *VirtioNet) Stats() Stats { return d.stats }

// Machine exposes the owning machine so zero-copy applications coded
// directly against the device (§6.4) can charge their inline packet
// processing to the right clock.
func (d *VirtioNet) Machine() *sim.Machine { return d.machine }

// Pending reports frames waiting on RX queue q (tests and pollers).
func (d *VirtioNet) Pending(q int) int {
	if q < 0 || q >= len(d.rxq) {
		return 0
	}
	return d.rxq[q].count
}

// GuestTxCyclesPerPkt exposes the driver-side TX cost for the Fig 19
// bottleneck model.
func GuestTxCyclesPerPkt() uint64 { return driverTxCycles }

// NewPair builds and starts two connected single-queue devices, the
// common test/benchmark topology (client NIC <-> server NIC). The rings
// are sized 4096 descriptors: benchmark drivers inject whole bursts
// between polls, so the ring must absorb a full 30-connection pipeline
// window (a real system interleaves producer and consumer at packet
// granularity).
func NewPair(ma, mb *sim.Machine, backend Backend) (*VirtioNet, *VirtioNet, error) {
	return NewTunedPair(ma, mb, backend, Tuning{})
}

// NewTunedPair is NewPair with kick/IRQ coalescing applied to both
// devices.
func NewTunedPair(ma, mb *sim.Machine, backend Backend, t Tuning) (*VirtioNet, *VirtioNet, error) {
	a := NewVirtioNet(ma, MAC{0x02, 0, 0, 0, 0, 0xA}, backend)
	b := NewVirtioNet(mb, MAC{0x02, 0, 0, 0, 0, 0xB}, backend)
	Connect(a, b)
	for _, d := range []*VirtioNet{a, b} {
		d.SetTuning(t)
		if err := d.Configure(1, 1); err != nil {
			return nil, nil, err
		}
		if err := d.RxQueueSetup(0, QueueConfig{Ring: 4096}); err != nil {
			return nil, nil, err
		}
		if err := d.TxQueueSetup(0, QueueConfig{Ring: 4096}); err != nil {
			return nil, nil, err
		}
		if err := d.Start(); err != nil {
			return nil, nil, err
		}
	}
	return a, b, nil
}

// NewMultiQueuePair builds and starts a connected client/server device
// pair where the server side has one RX/TX queue pair per entry in
// cores — queue i polled by (and charged to) cores[i] — and the client
// keeps a single queue on mc. Incoming server traffic spreads over the
// queues by RSS; this is the SMP benchmark topology (one load
// generator, an N-core guest).
func NewMultiQueuePair(mc *sim.Machine, cores []*sim.Machine, backend Backend, t Tuning) (client, server *VirtioNet, err error) {
	if len(cores) == 0 {
		return nil, nil, fmt.Errorf("uknetdev: NewMultiQueuePair needs at least one core")
	}
	client = NewVirtioNet(mc, MAC{0x02, 0, 0, 0, 0, 0xA}, backend)
	server = NewVirtioNet(cores[0], MAC{0x02, 0, 0, 0, 0, 0xB}, backend)
	Connect(client, server)
	client.SetTuning(t)
	server.SetTuning(t)
	if err := client.Configure(1, 1); err != nil {
		return nil, nil, err
	}
	if err := client.RxQueueSetup(0, QueueConfig{Ring: 4096}); err != nil {
		return nil, nil, err
	}
	if err := client.TxQueueSetup(0, QueueConfig{Ring: 4096}); err != nil {
		return nil, nil, err
	}
	if err := client.Start(); err != nil {
		return nil, nil, err
	}
	if err := server.Configure(len(cores), len(cores)); err != nil {
		return nil, nil, err
	}
	for i, m := range cores {
		if err := server.RxQueueSetup(i, QueueConfig{Ring: 4096, Machine: m}); err != nil {
			return nil, nil, err
		}
		if err := server.TxQueueSetup(i, QueueConfig{Ring: 4096, Machine: m}); err != nil {
			return nil, nil, err
		}
	}
	if err := server.Start(); err != nil {
		return nil, nil, err
	}
	return client, server, nil
}
