package uknetdev

import (
	"fmt"

	"unikraft/internal/sim"
)

// Driver-side per-packet descriptor costs (cycles): building/reaping one
// virtqueue descriptor chain. Zero-copy I/O means no payload copies on
// the guest side (§3.1: "supporting high performance features like
// multiple queues, zero-copy I/O, and packet batching").
const (
	driverTxCycles = 82
	driverRxCycles = 76
	defaultRing    = 256
	defaultMTU     = 1500
)

// VirtioNet is the virtio-net driver attached to a host backend, wired
// to a peer device (the remote end of the cable or the host bridge).
type VirtioNet struct {
	mac     MAC
	machine *sim.Machine
	backend Backend

	peer *VirtioNet

	rxq, txq []*vring
	started  bool
	stats    Stats
}

// vring is one virtqueue: a bounded ring of waiting packets plus the
// interrupt line state.
type vring struct {
	cap     int
	pending [][]byte // packets waiting for RxBurst (payload copies = DMA'd buffers)
	intr    func()
	armed   bool
}

// NewVirtioNet creates an unconfigured device on machine m using the
// given host backend. Wire two devices together with Connect.
func NewVirtioNet(m *sim.Machine, mac MAC, b Backend) *VirtioNet {
	return &VirtioNet{mac: mac, machine: m, backend: b}
}

// Connect cross-wires two devices (a direct cable, as in the paper's
// DPDK experiment setup, or the host bridge path).
func Connect(a, b *VirtioNet) {
	a.peer, b.peer = b, a
}

// Info implements Device.
func (d *VirtioNet) Info() Info {
	return Info{MaxRxQueues: 8, MaxTxQueues: 8, MaxMTU: defaultMTU, Backend: d.backend.Name}
}

// HWAddr implements Device.
func (d *VirtioNet) HWAddr() MAC { return d.mac }

// Configure implements Device.
func (d *VirtioNet) Configure(rxQueues, txQueues int) error {
	if d.started {
		return fmt.Errorf("uknetdev: Configure after Start")
	}
	info := d.Info()
	if rxQueues < 1 || rxQueues > info.MaxRxQueues || txQueues < 1 || txQueues > info.MaxTxQueues {
		return fmt.Errorf("uknetdev: queue counts %d/%d out of range", rxQueues, txQueues)
	}
	d.rxq = make([]*vring, rxQueues)
	d.txq = make([]*vring, txQueues)
	return nil
}

// RxQueueSetup implements Device.
func (d *VirtioNet) RxQueueSetup(q int, cfg QueueConfig) error {
	if q < 0 || q >= len(d.rxq) {
		return ErrBadQueue
	}
	ring := cfg.Ring
	if ring == 0 {
		ring = defaultRing
	}
	d.rxq[q] = &vring{cap: ring, intr: cfg.IntrHandler}
	return nil
}

// TxQueueSetup implements Device.
func (d *VirtioNet) TxQueueSetup(q int, cfg QueueConfig) error {
	if q < 0 || q >= len(d.txq) {
		return ErrBadQueue
	}
	ring := cfg.Ring
	if ring == 0 {
		ring = defaultRing
	}
	d.txq[q] = &vring{cap: ring, intr: cfg.IntrHandler}
	return nil
}

// Start implements Device.
func (d *VirtioNet) Start() error {
	if len(d.rxq) == 0 || len(d.txq) == 0 {
		return fmt.Errorf("uknetdev: Start before queue setup")
	}
	for i, q := range d.rxq {
		if q == nil {
			return fmt.Errorf("uknetdev: rx queue %d not set up", i)
		}
	}
	for i, q := range d.txq {
		if q == nil {
			return fmt.Errorf("uknetdev: tx queue %d not set up", i)
		}
	}
	d.started = true
	return nil
}

// TxBurst implements Device. The driver charges descriptor costs and the
// (amortized) kick; payload bytes move by DMA, so no guest-side copy.
func (d *VirtioNet) TxBurst(q int, pkts []*Netbuf) (int, bool, error) {
	if !d.started {
		return 0, false, ErrDevStopped
	}
	if q < 0 || q >= len(d.txq) {
		return 0, false, ErrBadQueue
	}
	sent := 0
	for _, nb := range pkts {
		if nb.Len > defaultMTU+14 {
			d.stats.TxDrops++
			continue
		}
		d.machine.Charge(driverTxCycles)
		// DMA snapshot of the frame onto the wire.
		frame := make([]byte, nb.Len)
		copy(frame, nb.Bytes())
		if d.peer != nil {
			d.peer.hostDeliver(frame)
		}
		d.stats.TxPackets++
		d.stats.TxBytes += uint64(nb.Len)
		sent++
	}
	if sent > 0 && d.backend.NeedsKick {
		d.machine.Charge(d.backend.KickCycles)
		d.stats.Kicks++
	}
	return sent, true, nil
}

// hostDeliver is the host-side path depositing a frame into this
// device's RX ring (queue 0; RSS is out of scope for a single-core VM).
func (d *VirtioNet) hostDeliver(frame []byte) {
	if !d.started || len(d.rxq) == 0 {
		return
	}
	q := d.rxq[0]
	if len(q.pending) >= q.cap {
		d.stats.RxDrops++
		return
	}
	q.pending = append(q.pending, frame)
	d.stats.RxBytes += uint64(len(frame))
	if q.armed && q.intr != nil {
		// One interrupt per transition to non-empty; the line then
		// stays inactive until re-enabled (storm avoidance, §3.1).
		q.armed = false
		d.stats.IRQs++
		d.machine.Charge(d.backend.IRQCycles)
		q.intr()
	}
}

// RxBurst implements Device.
func (d *VirtioNet) RxBurst(q int, pkts []*Netbuf) (int, bool, error) {
	if !d.started {
		return 0, false, ErrDevStopped
	}
	if q < 0 || q >= len(d.rxq) {
		return 0, false, ErrBadQueue
	}
	ring := d.rxq[q]
	n := 0
	for n < len(pkts) && len(ring.pending) > 0 {
		frame := ring.pending[0]
		ring.pending = ring.pending[1:]
		nb := pkts[n]
		if len(nb.Data)-nb.Off < len(frame) {
			d.stats.RxDrops++
			continue
		}
		d.machine.Charge(driverRxCycles)
		copy(nb.Data[nb.Off:], frame) // DMA wrote the app's buffer
		nb.Len = len(frame)
		d.stats.RxPackets++
		n++
	}
	return n, len(ring.pending) > 0, nil
}

// EnableRxInterrupt implements Device.
func (d *VirtioNet) EnableRxInterrupt(q int) error {
	if q < 0 || q >= len(d.rxq) {
		return ErrBadQueue
	}
	ring := d.rxq[q]
	ring.armed = true
	// If work is already pending, fire immediately (level semantics).
	if len(ring.pending) > 0 && ring.intr != nil {
		ring.armed = false
		d.stats.IRQs++
		d.machine.Charge(d.backend.IRQCycles)
		ring.intr()
	}
	return nil
}

// DisableRxInterrupt implements Device.
func (d *VirtioNet) DisableRxInterrupt(q int) error {
	if q < 0 || q >= len(d.rxq) {
		return ErrBadQueue
	}
	d.rxq[q].armed = false
	return nil
}

// Stats implements Device.
func (d *VirtioNet) Stats() Stats { return d.stats }

// Machine exposes the owning machine so zero-copy applications coded
// directly against the device (§6.4) can charge their inline packet
// processing to the right clock.
func (d *VirtioNet) Machine() *sim.Machine { return d.machine }

// Pending reports frames waiting on RX queue q (tests and pollers).
func (d *VirtioNet) Pending(q int) int {
	if q < 0 || q >= len(d.rxq) {
		return 0
	}
	return len(d.rxq[q].pending)
}

// GuestTxCyclesPerPkt exposes the driver-side TX cost for the Fig 19
// bottleneck model.
func GuestTxCyclesPerPkt() uint64 { return driverTxCycles }

// NewPair builds and starts two connected single-queue devices, the
// common test/benchmark topology (client NIC <-> server NIC). The rings
// are sized 4096 descriptors: benchmark drivers inject whole bursts
// between polls, so the ring must absorb a full 30-connection pipeline
// window (a real system interleaves producer and consumer at packet
// granularity).
func NewPair(ma, mb *sim.Machine, backend Backend) (*VirtioNet, *VirtioNet, error) {
	a := NewVirtioNet(ma, MAC{0x02, 0, 0, 0, 0, 0xA}, backend)
	b := NewVirtioNet(mb, MAC{0x02, 0, 0, 0, 0, 0xB}, backend)
	Connect(a, b)
	for _, d := range []*VirtioNet{a, b} {
		if err := d.Configure(1, 1); err != nil {
			return nil, nil, err
		}
		if err := d.RxQueueSetup(0, QueueConfig{Ring: 4096}); err != nil {
			return nil, nil, err
		}
		if err := d.TxQueueSetup(0, QueueConfig{Ring: 4096}); err != nil {
			return nil, nil, err
		}
		if err := d.Start(); err != nil {
			return nil, nil, err
		}
	}
	return a, b, nil
}
