package ukpool

import (
	"testing"
	"time"

	"unikraft/internal/sim"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukplat"
	"unikraft/internal/vfscore"
)

// fileCtx builds a boot context with a small populated ramfs root and
// a deliberately tiny fd table budget per instance (set by the test
// via SetMaxFDs after boot).
func fileCtx(t *testing.T) *ukboot.Context {
	t.Helper()
	ctx, err := ukboot.NewContext(ukboot.Config{
		Platform:       ukplat.KVMFirecracker,
		MemBytes:       8 << 20,
		ImageBytes:     512 << 10,
		Allocator:      "tlsf",
		RootFS:         ukboot.RootRamfs,
		Files:          map[string][]byte{"/index.html": []byte("<html>pool</html>")},
		PageCachePages: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestRequestWorkRuns: the per-request hook fires once per request with
// monotone sequence numbers, charges the instance machine, and its work
// lands in the measured service time.
func TestRequestWorkRuns(t *testing.T) {
	ctx := fileCtx(t)
	calls := 0
	lastSeq := 0
	pool := New(func(id int) (*ukboot.VM, error) { return ctx.Boot(sim.NewMachine()) },
		WithWarm(2), WithMaxInstances(8),
		WithRequestWork(func(vm *ukboot.VM, seq int) {
			calls++
			if seq != calls {
				t.Fatalf("seq %d on call %d", seq, calls)
			}
			lastSeq = seq
			if vm.VFS == nil {
				t.Fatal("instance has no VFS")
			}
			fd, err := vm.VFS.Open("/index.html", vfscore.ORdOnly)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := vm.VFS.Sendfile(fd, 0, -1, func([]byte) error { return nil }); err != nil {
				t.Fatal(err)
			}
			vm.VFS.Close(fd)
		}))
	defer pool.Close()
	const n = 500
	rep, err := pool.Serve(NewPoisson(7, 50_000, n, 128))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != n || calls != n || lastSeq != n {
		t.Fatalf("requests=%d calls=%d lastSeq=%d, want %d", rep.Requests, calls, lastSeq, n)
	}
}

// TestFDTableUnderPoolLoad: thousands of pooled requests, each doing a
// real open/sendfile/close against an instance whose descriptor table
// holds only 4 slots, never exhaust the table — and a hook that leaks
// descriptors is caught by the same bound. This is the edge the
// serving path leans on: fd churn at production request counts with
// recycling in between.
func TestFDTableUnderPoolLoad(t *testing.T) {
	ctx := fileCtx(t)
	seen := map[*ukboot.VM]bool{}
	pool := New(func(id int) (*ukboot.VM, error) {
		vm, err := ctx.Boot(sim.NewMachine())
		if err == nil {
			vm.VFS.SetMaxFDs(4)
		}
		return vm, err
	},
		WithWarm(2), WithMaxInstances(4), WithRecycleEvery(64),
		WithRequestWork(func(vm *ukboot.VM, seq int) {
			seen[vm] = true
			fd, err := vm.VFS.Open("/index.html", vfscore.ORdOnly)
			if err != nil {
				t.Fatalf("request %d: open: %v (fd table exhausted: leak)", seq, err)
			}
			if _, err := vm.VFS.Sendfile(fd, 0, -1, func([]byte) error { return nil }); err != nil {
				t.Fatal(err)
			}
			if err := vm.VFS.Close(fd); err != nil {
				t.Fatal(err)
			}
		}))
	defer pool.Close()
	rep, err := pool.Serve(NewBursty(3, 20_000, 120_000, 20*time.Millisecond, 0.5, 8_000, 128))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 8_000 {
		t.Fatalf("served %d requests", rep.Requests)
	}
	if rep.Resets == 0 {
		t.Error("recycling never ran — the test did not cover reset interleaving")
	}
	for vm := range seen {
		if got := vm.VFS.OpenFDs(); got != 0 {
			t.Errorf("instance leaked %d descriptors", got)
		}
	}

	// The same load with a leaky hook must hit ErrTooManyFD within the
	// table bound — proving the bound actually bites under pool load.
	leaks := 0
	leaky := New(func(id int) (*ukboot.VM, error) {
		vm, err := ctx.Boot(sim.NewMachine())
		if err == nil {
			vm.VFS.SetMaxFDs(4)
		}
		return vm, err
	},
		WithWarm(1), WithMaxInstances(1), DisableAutoscale(),
		WithRequestWork(func(vm *ukboot.VM, seq int) {
			if _, err := vm.VFS.Open("/index.html", vfscore.ORdOnly); err == vfscore.ErrTooManyFD {
				leaks++
			}
		}))
	defer leaky.Close()
	if _, err := leaky.Serve(NewPoisson(9, 20_000, 32, 64)); err != nil {
		t.Fatal(err)
	}
	if leaks == 0 {
		t.Error("leaky hook never saw ErrTooManyFD — fd bound not enforced")
	}
}
