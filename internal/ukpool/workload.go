package ukpool

import (
	"time"

	"unikraft/internal/sim"
)

// Request is one unit of offered load: when it arrives on the pool's
// virtual timeline and how many payload bytes the instance copies in
// and back out while serving it.
type Request struct {
	Arrival time.Duration
	Bytes   int
}

// Workload is a stream of requests in non-decreasing arrival order.
// Generators are pull-based iterators so traces of millions of requests
// never materialize in memory.
type Workload interface {
	// Next returns the next request, or ok=false when the trace ends.
	Next() (req Request, ok bool)
}

// Poisson is an open-loop Poisson arrival process: exponential
// inter-arrival gaps at a fixed mean rate, the standard model for
// aggregate request traffic from many independent users.
type Poisson struct {
	rnd   *sim.Rand
	rate  float64 // arrivals per second
	bytes int
	n     int
	i     int
	now   time.Duration
}

// NewPoisson returns n requests of size bytes arriving at rate
// requests/second, deterministically derived from seed.
func NewPoisson(seed uint64, rate float64, n, bytes int) *Poisson {
	if rate <= 0 {
		rate = 1
	}
	return &Poisson{rnd: sim.NewRand(seed), rate: rate, bytes: bytes, n: n}
}

// Next implements Workload.
func (p *Poisson) Next() (Request, bool) {
	if p.i >= p.n {
		return Request{}, false
	}
	p.i++
	gap := p.rnd.ExpFloat64() / p.rate * float64(time.Second)
	p.now += time.Duration(gap)
	return Request{Arrival: p.now, Bytes: p.bytes}, true
}

// Bursty is an on/off modulated Poisson process: within each period the
// first duty fraction runs at burstRate, the remainder at baseRate.
// Bursts are what exercise cold boots and the autoscaler — steady
// Poisson traffic barely leaves the warm set.
type Bursty struct {
	rnd                 *sim.Rand
	baseRate, burstRate float64
	period              time.Duration
	duty                float64
	bytes               int
	n                   int
	i                   int
	now                 time.Duration
}

// NewBursty returns n requests of size bytes with the given on/off
// rates, period and burst duty cycle in (0, 1), derived from seed.
func NewBursty(seed uint64, baseRate, burstRate float64, period time.Duration, duty float64, n, bytes int) *Bursty {
	if baseRate <= 0 {
		baseRate = 1
	}
	if burstRate < baseRate {
		burstRate = baseRate
	}
	if period <= 0 {
		period = time.Second
	}
	if duty <= 0 || duty >= 1 {
		duty = 0.1
	}
	return &Bursty{
		rnd: sim.NewRand(seed), baseRate: baseRate, burstRate: burstRate,
		period: period, duty: duty, bytes: bytes, n: n,
	}
}

// Next implements Workload.
func (b *Bursty) Next() (Request, bool) {
	if b.i >= b.n {
		return Request{}, false
	}
	b.i++
	rate := b.baseRate
	if b.now%b.period < time.Duration(b.duty*float64(b.period)) {
		rate = b.burstRate
	}
	gap := b.rnd.ExpFloat64() / rate * float64(time.Second)
	b.now += time.Duration(gap)
	return Request{Arrival: b.now, Bytes: b.bytes}, true
}

// Trace replays a fixed request slice — unit tests script exact arrival
// patterns with it.
type Trace struct {
	reqs []Request
	i    int
}

// NewTrace wraps reqs (which must already be sorted by arrival).
func NewTrace(reqs []Request) *Trace { return &Trace{reqs: reqs} }

// Next implements Workload.
func (t *Trace) Next() (Request, bool) {
	if t.i >= len(t.reqs) {
		return Request{}, false
	}
	r := t.reqs[t.i]
	t.i++
	return r, true
}
