package ukpool

import (
	"math"
	"time"

	"unikraft/internal/sim"
)

// Request is one unit of offered load: when it arrives on the pool's
// virtual timeline and how many payload bytes the instance copies in
// and back out while serving it.
type Request struct {
	Arrival time.Duration
	Bytes   int
	// Key identifies the session/flow the request belongs to (0 means
	// anonymous). The pool ignores it; the cluster front door hashes it
	// for consistent-hash session affinity.
	Key uint64
	// Origin, when non-zero, is the request's original arrival at the
	// cluster front door; end-to-end latency is then measured from it
	// instead of Arrival. The cluster router sets Arrival to the moment
	// the request reaches the chosen host (post routing + link) and
	// keeps the client-side timestamp here, so host queueing and the
	// routing delay both land in the latency histogram. Zero means
	// Arrival is the origin (plain single-host serving).
	Origin time.Duration
	// Attempt is the request's retry ordinal (0 = first try). The fault
	// machinery bumps it on every crash-triggered retry, and it feeds
	// the deterministic VM crash draw so a retried request flips a
	// fresh coin instead of crashing forever.
	Attempt int
	// Deadline, when non-zero, is the absolute virtual time past which
	// the answer stops mattering. The cluster front door and the pool's
	// queue both drop a request whose deadline already passed — before
	// any service time is charged — and count it Expired. Zero means no
	// deadline (every pre-overload-control trace).
	Deadline time.Duration
	// Class is the request's priority class. Staged admission sheds
	// ClassBatch traffic before it touches ClassInteractive.
	Class int
}

// Priority classes. Zero is interactive on purpose: anonymous legacy
// traffic is the last thing the admission controller sacrifices.
const (
	ClassInteractive = 0
	ClassBatch       = 1
)

// Workload is a stream of requests in non-decreasing arrival order.
// Generators are pull-based iterators so traces of millions of requests
// never materialize in memory.
type Workload interface {
	// Next returns the next request, or ok=false when the trace ends.
	Next() (req Request, ok bool)
}

// Poisson is an open-loop Poisson arrival process: exponential
// inter-arrival gaps at a fixed mean rate, the standard model for
// aggregate request traffic from many independent users.
type Poisson struct {
	rnd   *sim.Rand
	rate  float64 // arrivals per second
	bytes int
	n     int
	i     int
	now   time.Duration
}

// NewPoisson returns n requests of size bytes arriving at rate
// requests/second, deterministically derived from seed.
func NewPoisson(seed uint64, rate float64, n, bytes int) *Poisson {
	if rate <= 0 {
		rate = 1
	}
	return &Poisson{rnd: sim.NewRand(seed), rate: rate, bytes: bytes, n: n}
}

// Next implements Workload.
func (p *Poisson) Next() (Request, bool) {
	if p.i >= p.n {
		return Request{}, false
	}
	p.i++
	gap := p.rnd.ExpFloat64() / p.rate * float64(time.Second)
	p.now += time.Duration(gap)
	return Request{Arrival: p.now, Bytes: p.bytes}, true
}

// Bursty is an on/off modulated Poisson process: within each period the
// first duty fraction runs at burstRate, the remainder at baseRate.
// Bursts are what exercise cold boots and the autoscaler — steady
// Poisson traffic barely leaves the warm set.
type Bursty struct {
	rnd                 *sim.Rand
	baseRate, burstRate float64
	period              time.Duration
	duty                float64
	bytes               int
	n                   int
	i                   int
	now                 time.Duration
}

// NewBursty returns n requests of size bytes with the given on/off
// rates, period and burst duty cycle in (0, 1), derived from seed.
func NewBursty(seed uint64, baseRate, burstRate float64, period time.Duration, duty float64, n, bytes int) *Bursty {
	if baseRate <= 0 {
		baseRate = 1
	}
	if burstRate < baseRate {
		burstRate = baseRate
	}
	if period <= 0 {
		period = time.Second
	}
	if duty <= 0 || duty >= 1 {
		duty = 0.1
	}
	return &Bursty{
		rnd: sim.NewRand(seed), baseRate: baseRate, burstRate: burstRate,
		period: period, duty: duty, bytes: bytes, n: n,
	}
}

// Next implements Workload.
func (b *Bursty) Next() (Request, bool) {
	if b.i >= b.n {
		return Request{}, false
	}
	b.i++
	rate := b.baseRate
	if b.now%b.period < time.Duration(b.duty*float64(b.period)) {
		rate = b.burstRate
	}
	gap := b.rnd.ExpFloat64() / rate * float64(time.Second)
	b.now += time.Duration(gap)
	return Request{Arrival: b.now, Bytes: b.bytes}, true
}

// Diurnal is the cluster-scale trace shape: a Poisson process whose
// rate follows a sinusoidal day/night curve between baseRate (trough)
// and peakRate (crest) over each period, with an optional flash crowd —
// a window during which the rate jumps to flashRate regardless of the
// diurnal phase (a link going viral mid-afternoon). Every request
// carries a session key drawn uniformly from a fixed session
// population, so consistent-hash affinity has identities to stick to.
type Diurnal struct {
	rnd                *sim.Rand
	baseRate, peakRate float64
	period             time.Duration
	flashAt, flashEnd  time.Duration
	flashRate          float64
	sessions           int
	bytes              int
	n, i               int
	now                time.Duration
}

// NewDiurnal returns n requests of size bytes whose arrival rate swings
// sinusoidally between baseRate and peakRate per period, spiking to
// flashRate inside [flashAt, flashAt+flashDur), with session keys drawn
// from a population of sessions, all derived from seed. flashDur <= 0
// disables the flash crowd; sessions <= 0 leaves requests anonymous.
func NewDiurnal(seed uint64, baseRate, peakRate float64, period time.Duration,
	flashAt, flashDur time.Duration, flashRate float64, sessions, n, bytes int) *Diurnal {
	if baseRate <= 0 {
		baseRate = 1
	}
	if peakRate < baseRate {
		peakRate = baseRate
	}
	if period <= 0 {
		period = time.Second
	}
	if flashRate < peakRate {
		flashRate = peakRate
	}
	return &Diurnal{
		rnd: sim.NewRand(seed), baseRate: baseRate, peakRate: peakRate,
		period: period, flashAt: flashAt, flashEnd: flashAt + flashDur,
		flashRate: flashRate, sessions: sessions, bytes: bytes, n: n,
	}
}

// rate evaluates the modulated arrival rate at virtual time t.
func (d *Diurnal) rate(t time.Duration) float64 {
	if d.flashEnd > d.flashAt && t >= d.flashAt && t < d.flashEnd {
		return d.flashRate
	}
	phase := 2 * math.Pi * float64(t%d.period) / float64(d.period)
	// (1-cos)/2 swings 0→1→0 across the period: trough at t=0.
	return d.baseRate + (d.peakRate-d.baseRate)*(1-math.Cos(phase))/2
}

// Next implements Workload.
func (d *Diurnal) Next() (Request, bool) {
	if d.i >= d.n {
		return Request{}, false
	}
	d.i++
	gap := d.rnd.ExpFloat64() / d.rate(d.now) * float64(time.Second)
	d.now += time.Duration(gap)
	req := Request{Arrival: d.now, Bytes: d.bytes}
	if d.sessions > 0 {
		req.Key = d.rnd.Uint64()%uint64(d.sessions) + 1
	}
	return req, true
}

// Overload is the open-loop overload trace: a Poisson arrival process
// pinned at a fixed rate — typically a multiple of the serving
// capacity — that keeps offering load no matter how far the system
// falls behind (no client backpressure, the regime where FIFO queues
// collapse). Each request carries a priority class drawn from a fixed
// mix and a per-class relative deadline stamped at generation time, so
// the end-to-end deadline travels from the workload through the front
// door into the pool queue.
type Overload struct {
	rnd      *sim.Rand
	rate     float64
	bytes    int
	n, i     int
	now      time.Duration
	mix      float64 // interactive share of the trace, in [0, 1]
	dlInt    time.Duration
	dlBatch  time.Duration
	sessions int
	surgeAt  time.Duration
	surgeEnd time.Duration
	surge    float64
}

// NewOverload returns n requests of size bytes arriving open-loop at
// rate requests/second, derived from seed. By default the whole trace
// is interactive and carries no deadlines; chain Mix, Deadlines,
// Sessions and Surge to shape it.
func NewOverload(seed uint64, rate float64, n, bytes int) *Overload {
	if rate <= 0 {
		rate = 1
	}
	return &Overload{rnd: sim.NewRand(seed), rate: rate, bytes: bytes, n: n, mix: 1}
}

// Mix sets the interactive share of the trace; the remainder is batch.
func (o *Overload) Mix(interactiveShare float64) *Overload {
	if interactiveShare < 0 {
		interactiveShare = 0
	}
	if interactiveShare > 1 {
		interactiveShare = 1
	}
	o.mix = interactiveShare
	return o
}

// Deadlines sets the per-class relative deadlines (0 leaves the class
// deadline-free); each request's absolute deadline is its arrival plus
// its class's allowance.
func (o *Overload) Deadlines(interactive, batch time.Duration) *Overload {
	o.dlInt, o.dlBatch = interactive, batch
	return o
}

// Sessions draws request keys from a population of n sessions (<= 0
// leaves requests anonymous).
func (o *Overload) Sessions(n int) *Overload {
	o.sessions = n
	return o
}

// Surge multiplies the arrival rate by factor inside [at, at+dur) —
// the flash-crowd spike on top of the sustained overload.
func (o *Overload) Surge(at, dur time.Duration, factor float64) *Overload {
	if factor < 1 {
		factor = 1
	}
	o.surgeAt, o.surgeEnd, o.surge = at, at+dur, factor
	return o
}

// Next implements Workload.
func (o *Overload) Next() (Request, bool) {
	if o.i >= o.n {
		return Request{}, false
	}
	o.i++
	rate := o.rate
	if o.surge > 1 && o.now >= o.surgeAt && o.now < o.surgeEnd {
		rate *= o.surge
	}
	gap := o.rnd.ExpFloat64() / rate * float64(time.Second)
	o.now += time.Duration(gap)
	req := Request{Arrival: o.now, Bytes: o.bytes}
	if o.rnd.Float64() >= o.mix {
		req.Class = ClassBatch
		if o.dlBatch > 0 {
			req.Deadline = o.now + o.dlBatch
		}
	} else if o.dlInt > 0 {
		req.Deadline = o.now + o.dlInt
	}
	if o.sessions > 0 {
		req.Key = o.rnd.Uint64()%uint64(o.sessions) + 1
	}
	return req, true
}

// Trace replays a fixed request slice — unit tests script exact arrival
// patterns with it.
type Trace struct {
	reqs []Request
	i    int
}

// NewTrace wraps reqs (which must already be sorted by arrival).
func NewTrace(reqs []Request) *Trace { return &Trace{reqs: reqs} }

// Next implements Workload.
func (t *Trace) Next() (Request, bool) {
	if t.i >= len(t.reqs) {
		return Request{}, false
	}
	r := t.reqs[t.i]
	t.i++
	return r, true
}
