package ukpool

import (
	"fmt"
	"slices"
	"time"
)

// StreamHist is the streaming form of Histogram: the same log-bucketed
// latency summary, stored sparsely. A dense Histogram carries its full
// bucket array (2KB) whether it holds one observation or a billion;
// per-window latency series over long traces accumulate thousands of
// windows, each populated by a narrow latency band, so the series layer
// records into StreamHists instead — memory scales with the buckets a
// window actually touched, not with the trace length.
//
// Record, Merge and Quantile reproduce Histogram's integer bucket math
// exactly (same bucketOf/bucketLow, same rank rule), so a series built
// from StreamHists is bit-for-bit the summary the dense form would have
// produced — TestStreamHistMatchesHistogram holds the two against each
// other observation-for-observation.
type StreamHist struct {
	Count uint64
	Sum   time.Duration
	MinV  time.Duration
	MaxV  time.Duration
	// idx holds the occupied bucket indices in ascending order; cnt[i]
	// is the count for bucket idx[i].
	idx      []uint16
	cnt      []uint32
	overflow uint64
}

// add folds n observations into bucket i, keeping idx sorted.
func (h *StreamHist) add(i int, n uint32) {
	if i >= histBuckets {
		h.overflow += uint64(n)
		return
	}
	at, ok := slices.BinarySearch(h.idx, uint16(i))
	if ok {
		h.cnt[at] += n
		return
	}
	h.idx = slices.Insert(h.idx, at, uint16(i))
	h.cnt = slices.Insert(h.cnt, at, n)
}

// Record adds one observation, clamping negatives to zero exactly like
// Histogram.Record.
func (h *StreamHist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.Count == 0 || d < h.MinV {
		h.MinV = d
	}
	if d > h.MaxV {
		h.MaxV = d
	}
	h.Count++
	h.Sum += d
	h.add(bucketOf(uint64(d)), 1)
}

// Merge folds another streaming histogram into h bucket-wise. Like
// Histogram.Merge, the result is independent of merge order grouping.
func (h *StreamHist) Merge(o *StreamHist) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.MinV < h.MinV {
		h.MinV = o.MinV
	}
	if o.MaxV > h.MaxV {
		h.MaxV = o.MaxV
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i, b := range o.idx {
		h.add(int(b), o.cnt[i])
	}
	h.overflow += o.overflow
}

// Mean reports the average observation, or 0 when empty.
func (h *StreamHist) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile reports the value at quantile q in [0, 1] with Histogram's
// exact rank and clamp rules (bucket lower bound, min/max clamped).
func (h *StreamHist) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.Count-1))
	var seen uint64
	for i, c := range h.cnt {
		seen += uint64(c)
		if seen > rank {
			lo := time.Duration(bucketLow(int(h.idx[i])))
			if lo < h.MinV {
				lo = h.MinV
			}
			if lo > h.MaxV {
				lo = h.MaxV
			}
			return lo
		}
	}
	return h.MaxV
}

// String renders the same five-number summary as Histogram.String.
func (h *StreamHist) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%v p50=%v p90=%v p99=%v max=%v",
		h.Count, h.MinV, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.MaxV)
}
