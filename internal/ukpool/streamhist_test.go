package ukpool

import (
	"testing"
	"time"

	"unikraft/internal/sim"
)

// TestStreamHistMatchesHistogram drives the sparse streaming histogram
// and the dense one with identical observation streams — log-spread
// values, duplicates, zeros, negatives, the bucket-overflow edge — and
// requires identical summaries at every step, including after
// order-shuffled merges. This is the byte-identity contract the series
// layer relies on when it swaps the dense form out.
func TestStreamHistMatchesHistogram(t *testing.T) {
	check := func(t *testing.T, s *StreamHist, d *Histogram) {
		t.Helper()
		if s.Count != d.Count || s.Sum != d.Sum || s.MinV != d.MinV || s.MaxV != d.MaxV {
			t.Fatalf("summary diverged: sparse (n=%d sum=%v min=%v max=%v), dense (n=%d sum=%v min=%v max=%v)",
				s.Count, s.Sum, s.MinV, s.MaxV, d.Count, d.Sum, d.MinV, d.MaxV)
		}
		for _, q := range []float64{-1, 0, 0.25, 0.5, 0.9, 0.99, 0.999, 1, 2} {
			if sv, dv := s.Quantile(q), d.Quantile(q); sv != dv {
				t.Fatalf("Quantile(%v) = %v sparse, %v dense", q, sv, dv)
			}
		}
		if s.Mean() != d.Mean() {
			t.Fatalf("Mean = %v sparse, %v dense", s.Mean(), d.Mean())
		}
		if s.String() != d.String() {
			t.Fatalf("String = %q sparse, %q dense", s.String(), d.String())
		}
	}

	t.Run("empty", func(t *testing.T) { check(t, &StreamHist{}, &Histogram{}) })

	t.Run("stream", func(t *testing.T) {
		rng := sim.NewRand(7)
		var s StreamHist
		var d Histogram
		for i := 0; i < 20_000; i++ {
			// Log-uniform spread exercises every bucket scale; the shift
			// past 62 bits lands in the overflow counter.
			v := time.Duration(rng.Uint64() >> (rng.Intn(66)))
			if rng.Bool(0.05) {
				v = -v // negative clamps to zero in both
			}
			s.Record(v)
			d.Record(v)
			if i%997 == 0 {
				check(t, &s, &d)
			}
		}
		check(t, &s, &d)
	})

	t.Run("merge-order-independent", func(t *testing.T) {
		rng := sim.NewRand(11)
		const parts = 8
		sparse := make([]StreamHist, parts)
		dense := make([]Histogram, parts)
		for i := 0; i < 10_000; i++ {
			p := rng.Intn(parts)
			v := time.Duration(rng.Uint64() >> (20 + rng.Intn(30)))
			sparse[p].Record(v)
			dense[p].Record(v)
		}
		var sFwd, sRev StreamHist
		var dFwd Histogram
		for p := 0; p < parts; p++ {
			sFwd.Merge(&sparse[p])
			sRev.Merge(&sparse[parts-1-p])
			dFwd.Merge(&dense[p])
		}
		check(t, &sFwd, &dFwd)
		if sFwd.Count != sRev.Count || sFwd.Quantile(0.99) != sRev.Quantile(0.99) || sFwd.String() != sRev.String() {
			t.Fatal("sparse merge depends on merge order")
		}
	})
}
