package ukpool

import (
	"reflect"
	"testing"
	"time"

	"unikraft/internal/sim"
)

// TestHistogramMergeProperty: for arbitrary observation streams,
// arbitrary shard partitions and arbitrary merge groupings, merging the
// per-shard histograms is bit-for-bit identical to recording the whole
// stream sequentially. This is the property ServeParallel's and the
// cluster layer's deterministic shard/host report merges rely on, so it
// is exercised as a randomized property, not just one example: 50
// trials over mixed magnitudes (ns to minutes — many bucket octaves,
// including values beyond the overflow boundary via direct Record of
// huge durations).
func TestHistogramMergeProperty(t *testing.T) {
	r := sim.NewRand(0x4157)
	for trial := 0; trial < 50; trial++ {
		nObs := 100 + r.Intn(2000)
		nShards := 1 + r.Intn(8)

		var whole Histogram
		shards := make([]Histogram, nShards)
		for i := 0; i < nObs; i++ {
			// Span ~9 decades so every bucket regime is hit, plus the
			// occasional extreme that lands near MaxV handling.
			var d time.Duration
			switch r.Intn(4) {
			case 0:
				d = time.Duration(r.Intn(1000)) // sub-µs
			case 1:
				d = time.Duration(r.Intn(1_000_000)) * time.Nanosecond
			case 2:
				d = time.Duration(r.Intn(5000)) * time.Microsecond
			default:
				d = time.Duration(r.Intn(90)) * time.Second
			}
			whole.Record(d)
			shards[r.Intn(nShards)].Record(d)
		}

		// Merge the shards in a random grouping: repeatedly fold a
		// random shard into another until one remains. Associativity +
		// commutativity over integer buckets is exactly what makes the
		// result independent of goroutine completion order.
		live := make([]*Histogram, nShards)
		for i := range shards {
			live[i] = &shards[i]
		}
		for len(live) > 1 {
			i := r.Intn(len(live))
			j := r.Intn(len(live) - 1)
			if j >= i {
				j++
			}
			live[i].Merge(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if !reflect.DeepEqual(&whole, live[0]) {
			t.Fatalf("trial %d (%d obs, %d shards): merged shards diverged from sequential\nwhole:  %v\nmerged: %v",
				trial, nObs, nShards, &whole, live[0])
		}
	}
}

// TestHistogramMergeExtremes: the merge property holds at the edges of
// the value range too — zero, negative (clamped to zero) and the
// largest representable durations.
func TestHistogramMergeExtremes(t *testing.T) {
	var whole, a, b Histogram
	for _, d := range []time.Duration{0, -time.Second, 1, time.Duration(1) << 62, time.Millisecond} {
		whole.Record(d)
	}
	a.Record(0)
	a.Record(1)
	a.Record(time.Millisecond)
	b.Record(-time.Second)
	b.Record(time.Duration(1) << 62)
	a.Merge(&b)
	if !reflect.DeepEqual(&whole, &a) {
		t.Errorf("extreme-value merge diverged: %v vs %v", &whole, &a)
	}
}

// TestHistogramMergeQuantiles: quantiles of a merged histogram match
// the sequential one across the whole quantile range (they must — the
// state is identical — but this pins the public read API, not just the
// internals DeepEqual sees).
func TestHistogramMergeQuantiles(t *testing.T) {
	r := sim.NewRand(0xc0ffee)
	var whole, a, b Histogram
	for i := 0; i < 5000; i++ {
		d := time.Duration(r.Intn(10_000_000)) * time.Nanosecond
		whole.Record(d)
		if r.Bool(0.3) {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(&b)
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("q=%v: merged %v != sequential %v", q, got, want)
		}
	}
	if a.Mean() != whole.Mean() || a.Count != whole.Count {
		t.Errorf("merged summary diverged: mean %v/%v count %d/%d",
			a.Mean(), whole.Mean(), a.Count, whole.Count)
	}
}
