package ukpool

import (
	"fmt"
	"math"
	"sync"
	"time"

	"unikraft/internal/sim"
	"unikraft/internal/ukboot"
)

// BootFunc boots one fresh instance on its own simulated machine. The
// id is unique per instance for the pool's lifetime, so implementations
// can derive deterministic per-instance seeds from it. Called from
// multiple goroutines during batched scale-ups; each call must use its
// own machine.
type BootFunc func(id int) (*ukboot.VM, error)

// Config tunes a Pool. The zero value is not useful; New fills every
// unset field with the defaults documented per field.
type Config struct {
	// MinWarm is the floor of pre-booted instances (default 8). Serve
	// boots up to it before admitting traffic and the autoscaler never
	// shrinks below it.
	MinWarm int
	// MaxInstances caps the fleet, warm and busy together (default
	// 1024). Arrivals beyond the cap queue instead of cold-booting.
	MaxInstances int
	// ColdBurst bounds cold boots in flight at once (default 32). A
	// miss beyond it queues instead of booting: with multi-millisecond
	// boots, unbounded demand-driven boots would storm the fleet to its
	// cap before the first instance comes up. Growing past the burst
	// allowance is the autoscaler's job.
	ColdBurst int
	// SyscallsPerRequest is the number of shim-translated syscalls an
	// instance issues per request (default 4: read, work, write, close).
	SyscallsPerRequest int
	// AppCycles is the application-level work per request in CPU cycles
	// (default 12000, ~3.3us at 3.6GHz).
	AppCycles uint64
	// RecycleEvery resets an instance's heap after this many served
	// requests (default 4096; 0 disables recycling).
	RecycleEvery int
	// ScaleWindow is the autoscaler's observation window and tick
	// period (default 50ms of virtual time).
	ScaleWindow time.Duration
	// TargetP99 is the request-latency SLO; a window whose p99 exceeds
	// it triggers a scale-up regardless of utilization (default 2ms).
	TargetP99 time.Duration
	// Headroom multiplies the Little's-law concurrency estimate
	// (arrival rate x mean service time) when sizing the warm set
	// (default 2.0).
	Headroom float64
	// Autoscale enables the rate/latency-driven warm-set controller
	// (default on; DisableAutoscale turns it off).
	Autoscale bool
	// PerRequestHeap makes every request malloc/free its payload buffer
	// on the instance's real heap allocator (default on).
	PerRequestHeap bool
}

// Option adjusts a Config.
type Option func(*Config)

// WithWarm sets the warm-instance floor.
func WithWarm(n int) Option { return func(c *Config) { c.MinWarm = n } }

// WithMaxInstances caps the fleet size.
func WithMaxInstances(n int) Option { return func(c *Config) { c.MaxInstances = n } }

// WithColdBurst bounds demand-driven cold boots in flight at once.
func WithColdBurst(n int) Option { return func(c *Config) { c.ColdBurst = n } }

// WithServiceCost sets the per-request cost model: syscall count and
// application cycles.
func WithServiceCost(syscalls int, appCycles uint64) Option {
	return func(c *Config) {
		c.SyscallsPerRequest = syscalls
		c.AppCycles = appCycles
	}
}

// WithRecycleEvery resets an instance's heap after n served requests
// (0 disables).
func WithRecycleEvery(n int) Option { return func(c *Config) { c.RecycleEvery = n } }

// WithScaleWindow sets the autoscaler tick period.
func WithScaleWindow(d time.Duration) Option { return func(c *Config) { c.ScaleWindow = d } }

// WithTargetP99 sets the latency SLO driving scale-ups.
func WithTargetP99(d time.Duration) Option { return func(c *Config) { c.TargetP99 = d } }

// WithHeadroom sets the warm-set capacity margin.
func WithHeadroom(h float64) Option { return func(c *Config) { c.Headroom = h } }

// DisableAutoscale pins the warm set at MinWarm (cold boots still
// happen on demand up to MaxInstances).
func DisableAutoscale() Option { return func(c *Config) { c.Autoscale = false } }

// DisablePerRequestHeap turns off the per-request malloc/free on the
// instance heap (pure cost-model service time).
func DisablePerRequestHeap() Option { return func(c *Config) { c.PerRequestHeap = false } }

// instance is one booted unikernel in the fleet.
type instance struct {
	id      int
	vm      *ukboot.VM
	bootDur time.Duration
	served  int // requests since the last heap reset
}

// Pool keeps a fleet of instances of one spec and serves request
// streams through it. All methods are safe for concurrent use;
// concurrent Serve calls serialize on the pool's fleet.
type Pool struct {
	cfg  Config
	boot BootFunc

	mu     sync.Mutex
	nextID int
	fleet  []*instance // every live instance
	idle   []*instance // subset currently idle (LIFO for cache warmth)
	closed bool
}

// New builds a pool over boot. No instances are booted until Serve (or
// Prewarm) runs.
func New(boot BootFunc, opts ...Option) *Pool {
	cfg := Config{
		MinWarm:            8,
		MaxInstances:       1024,
		ColdBurst:          32,
		SyscallsPerRequest: 4,
		AppCycles:          12_000,
		RecycleEvery:       4096,
		ScaleWindow:        50 * time.Millisecond,
		TargetP99:          2 * time.Millisecond,
		Headroom:           2.0,
		Autoscale:          true,
		PerRequestHeap:     true,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.MinWarm < 1 {
		cfg.MinWarm = 1
	}
	if cfg.MaxInstances < cfg.MinWarm {
		cfg.MaxInstances = cfg.MinWarm
	}
	if cfg.ScaleWindow <= 0 {
		cfg.ScaleWindow = 50 * time.Millisecond
	}
	if cfg.Headroom < 1 {
		cfg.Headroom = 1
	}
	if cfg.ColdBurst < 1 {
		cfg.ColdBurst = 1
	}
	return &Pool{cfg: cfg, boot: boot}
}

// Size reports the live fleet size (idle + busy).
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fleet)
}

// Idle reports the number of idle warm instances.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Close retires every instance. The pool must not be serving.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, inst := range p.fleet {
		inst.vm.Close()
	}
	p.fleet, p.idle, p.closed = nil, nil, true
}

// Report is the outcome of one Serve run.
type Report struct {
	// Requests is the number of requests served (all of them: the pool
	// never drops, it queues).
	Requests int
	// WarmHits counts requests dispatched immediately to an idle warm
	// instance; ColdBoots counts requests that paid a full boot;
	// Queued counts requests that waited for an instance to free up.
	WarmHits, ColdBoots, Queued int
	// Resets counts warm-instance heap recycles; Retired counts
	// instances the autoscaler shut down.
	Resets, Retired int
	// ScaleUps and ScaleDowns count autoscaler resize decisions.
	ScaleUps, ScaleDowns int
	// PeakInstances is the largest fleet observed; FinalInstances the
	// fleet left warm when the trace drained.
	PeakInstances, FinalInstances int
	// Duration is the virtual makespan: first arrival to last
	// completion.
	Duration time.Duration
	// Boot holds per-boot total times (prewarm, cold and scale-up
	// boots); Latency holds end-to-end request latencies (queue wait +
	// boot wait + service).
	Boot Histogram
	// Latency holds end-to-end request latencies.
	Latency Histogram
}

// WarmHitRatio is WarmHits / Requests, the pool's headline number.
func (r *Report) WarmHitRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.WarmHits) / float64(r.Requests)
}

// Throughput is Requests per second of virtual makespan.
func (r *Report) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Duration.Seconds()
}

// String renders the multi-line summary ukserve prints.
func (r *Report) String() string {
	return fmt.Sprintf(
		"served   %d requests in %v (%.0f req/s)\n"+
			"routing  warm=%d (%.2f%%) cold=%d queued=%d\n"+
			"fleet    peak=%d final=%d scale-ups=%d scale-downs=%d retired=%d resets=%d\n"+
			"boot     %v\n"+
			"latency  %v",
		r.Requests, r.Duration.Round(time.Microsecond), r.Throughput(),
		r.WarmHits, 100*r.WarmHitRatio(), r.ColdBoots, r.Queued,
		r.PeakInstances, r.FinalInstances, r.ScaleUps, r.ScaleDowns, r.Retired, r.Resets,
		&r.Boot, &r.Latency)
}

// serveState is the per-Serve bookkeeping threaded through the event
// callbacks.
type serveState struct {
	loop  *sim.EventLoop
	w     Workload
	wDone bool
	rep   *Report
	err   error

	busy    int
	booting int // cold + scale-up boots in flight
	queue   []Request
	lastEnd time.Duration

	// autoscaler window
	winArrivals int
	winLat      Histogram
	ewmaService time.Duration
}

// Prewarm boots the fleet up to n instances (batched, concurrently),
// recording nothing. Serve prewarms to MinWarm automatically; callers
// that want boot costs off the serving path can prewarm larger sets
// explicitly.
func (p *Pool) Prewarm(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("ukpool: prewarm on closed pool")
	}
	insts, err := p.bootBatch(n - len(p.fleet))
	if err != nil {
		return err
	}
	p.idle = append(p.idle, insts...)
	return nil
}

// Serve routes every request of w through the fleet on a fresh
// virtual-time event loop and reports what happened. Warm instances
// serve immediately; misses cold-boot (paying the full boot pipeline on
// a fresh per-instance machine) up to MaxInstances, beyond which
// requests queue FIFO. The autoscaler resizes the warm set every
// ScaleWindow from the observed arrival rate, mean service time and
// window p99.
//
// Serve is deterministic: same workload, same config, same report.
// Concurrent Serve calls are safe and serialize.
func (p *Pool) Serve(w Workload) (*Report, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("ukpool: serve on closed pool")
	}

	st := &serveState{loop: sim.NewEventLoop(), w: w, rep: &Report{}}

	// Warm floor first, so steady traffic starts against a warm fleet.
	insts, err := p.bootBatch(p.cfg.MinWarm - len(p.fleet))
	if err != nil {
		return nil, err
	}
	for _, inst := range insts {
		st.rep.Boot.Record(inst.bootDur)
	}
	p.idle = append(p.idle, insts...)
	st.rep.PeakInstances = len(p.fleet)

	p.scheduleArrival(st)
	if p.cfg.Autoscale {
		st.loop.After(p.cfg.ScaleWindow, func(now time.Duration) { p.tick(st, now) })
	}
	st.loop.Run()

	st.rep.Duration = st.lastEnd
	st.rep.FinalInstances = len(p.fleet)
	if st.err != nil {
		return st.rep, st.err
	}
	return st.rep, nil
}

// scheduleArrival pulls the next request off the workload and schedules
// its arrival event.
func (p *Pool) scheduleArrival(st *serveState) {
	if st.err != nil {
		st.wDone = true
		return
	}
	req, ok := st.w.Next()
	if !ok {
		st.wDone = true
		return
	}
	st.loop.At(req.Arrival, func(now time.Duration) { p.arrive(st, req, now) })
}

// arrive routes one request: warm hit, cold boot, or queue.
func (p *Pool) arrive(st *serveState, req Request, now time.Duration) {
	st.rep.Requests++
	st.winArrivals++
	switch {
	case len(p.idle) > 0:
		inst := p.takeIdle()
		st.rep.WarmHits++
		p.startService(st, inst, req, now)
	case len(p.fleet) < p.cfg.MaxInstances && st.booting < p.cfg.ColdBurst:
		st.rep.ColdBoots++
		inst, err := p.bootOne()
		if err != nil {
			st.err = fmt.Errorf("ukpool: cold boot: %w", err)
			break
		}
		st.rep.Boot.Record(inst.bootDur)
		if len(p.fleet) > st.rep.PeakInstances {
			st.rep.PeakInstances = len(p.fleet)
		}
		st.booting++
		st.loop.At(now+inst.bootDur, func(ready time.Duration) {
			st.booting--
			p.startService(st, inst, req, ready)
		})
	default:
		st.rep.Queued++
		st.queue = append(st.queue, req)
	}
	p.scheduleArrival(st)
}

// startService charges the request's work to the instance's own CPU and
// schedules the completion.
func (p *Pool) startService(st *serveState, inst *instance, req Request, now time.Duration) {
	svc := p.serviceTime(inst, req.Bytes)
	st.busy++
	done := now + svc
	lat := done - req.Arrival // queue wait + boot wait + service
	st.loop.At(done, func(end time.Duration) {
		st.busy--
		if end > st.lastEnd {
			st.lastEnd = end
		}
		st.rep.Latency.Record(lat)
		st.winLat.Record(lat)
		// EWMA of service time feeds the autoscaler's Little's-law
		// estimate (alpha = 1/8).
		if st.ewmaService == 0 {
			st.ewmaService = svc
		} else {
			st.ewmaService += (svc - st.ewmaService) / 8
		}
		p.finishInstance(st, inst, end)
	})
}

// finishInstance recycles the instance if due, then dispatches it. The
// heap re-init is charged to the instance clock AND delays its next
// dispatch by the same amount on the shared timeline — a recycling
// instance is not serving.
func (p *Pool) finishInstance(st *serveState, inst *instance, now time.Duration) {
	inst.served++
	if p.cfg.RecycleEvery > 0 && inst.served >= p.cfg.RecycleEvery {
		m := inst.vm.Machine
		start := m.CPU.Cycles()
		if err := inst.vm.Reset(); err != nil {
			st.err = fmt.Errorf("ukpool: recycle instance %d: %w", inst.id, err)
			return
		}
		inst.served = 0
		st.rep.Resets++
		resetDur := m.CPU.Duration(m.CPU.Cycles() - start)
		st.booting++ // out of rotation until the re-init completes
		st.loop.At(now+resetDur, func(ready time.Duration) {
			st.booting--
			p.dispatch(st, inst, ready)
		})
		return
	}
	p.dispatch(st, inst, now)
}

// serviceTime performs one request's work on the instance: syscalls
// through the shim, two virtqueue kicks, payload copies in and out,
// the application cycles, and (by default) a real malloc/free of the
// payload buffer on the instance heap.
func (p *Pool) serviceTime(inst *instance, bytes int) time.Duration {
	m := inst.vm.Machine
	start := m.CPU.Cycles()
	m.Charge(uint64(p.cfg.SyscallsPerRequest)*m.Costs.UnikraftSyscall +
		2*m.Costs.VMExit + p.cfg.AppCycles)
	m.ChargeCopy(bytes) // rx
	m.ChargeCopy(bytes) // tx
	if p.cfg.PerRequestHeap && bytes > 0 {
		if ptr, err := inst.vm.Heap.Malloc(bytes); err == nil {
			_ = inst.vm.Heap.Free(ptr)
		}
	}
	return m.CPU.Duration(m.CPU.Cycles() - start)
}

// tick is one autoscaler evaluation: size the warm set from the
// window's arrival rate and the service-time EWMA (Little's law with
// headroom), and override upward when the window p99 blows the SLO.
func (p *Pool) tick(st *serveState, now time.Duration) {
	if st.err != nil {
		return // the serve run is failing; stop resizing and let it drain
	}
	rate := float64(st.winArrivals) / p.cfg.ScaleWindow.Seconds()
	desired := p.cfg.MinWarm
	if st.ewmaService > 0 {
		need := int(math.Ceil(rate * st.ewmaService.Seconds() * p.cfg.Headroom))
		if need > desired {
			desired = need
		}
	}
	if st.winLat.Count > 0 && p.cfg.TargetP99 > 0 && st.winLat.Quantile(0.99) > p.cfg.TargetP99 {
		grow := len(p.fleet) + (len(p.fleet)+1)/2
		if grow > desired {
			desired = grow
		}
	}
	if desired > p.cfg.MaxInstances {
		desired = p.cfg.MaxInstances
	}

	switch {
	case desired > len(p.fleet):
		st.rep.ScaleUps++
		insts, err := p.bootBatch(desired - len(p.fleet))
		if err != nil {
			st.err = fmt.Errorf("ukpool: scale-up: %w", err)
			return
		}
		for _, inst := range insts {
			inst := inst
			st.rep.Boot.Record(inst.bootDur)
			st.booting++
			st.loop.At(now+inst.bootDur, func(ready time.Duration) {
				st.booting--
				p.dispatch(st, inst, ready)
			})
		}
		if len(p.fleet) > st.rep.PeakInstances {
			st.rep.PeakInstances = len(p.fleet)
		}
	case desired < len(p.fleet) && len(p.idle) > 0:
		n := len(p.fleet) - desired
		if n > len(p.idle) {
			n = len(p.idle)
		}
		st.rep.ScaleDowns++
		for i := 0; i < n; i++ {
			p.retire(p.takeColdest())
			st.rep.Retired++
		}
	}

	st.winArrivals = 0
	st.winLat = Histogram{}
	if !st.wDone || st.busy > 0 || st.booting > 0 || len(st.queue) > 0 {
		st.loop.After(p.cfg.ScaleWindow, func(t time.Duration) { p.tick(st, t) })
	}
}

// dispatch routes a ready instance: the oldest queued request if any
// are waiting, else back to the warm set.
func (p *Pool) dispatch(st *serveState, inst *instance, now time.Duration) {
	if len(st.queue) > 0 {
		req := st.queue[0]
		st.queue = st.queue[1:]
		p.startService(st, inst, req, now)
		return
	}
	p.idle = append(p.idle, inst)
}

// takeIdle pops the most recently idled instance (LIFO keeps the hot
// few instances hot and lets the tail go cold for retirement).
func (p *Pool) takeIdle() *instance {
	inst := p.idle[len(p.idle)-1]
	p.idle = p.idle[:len(p.idle)-1]
	return inst
}

// takeColdest pops the longest-idle instance — the retirement end of
// the stack.
func (p *Pool) takeColdest() *instance {
	inst := p.idle[0]
	p.idle = p.idle[1:]
	return inst
}

// retire removes inst from the fleet and releases its resources.
func (p *Pool) retire(inst *instance) {
	for i, x := range p.fleet {
		if x == inst {
			p.fleet[i] = p.fleet[len(p.fleet)-1]
			p.fleet = p.fleet[:len(p.fleet)-1]
			break
		}
	}
	inst.vm.Close()
}

// bootOne boots a single instance and adds it to the fleet (not idle:
// the caller owns routing it).
func (p *Pool) bootOne() (*instance, error) {
	id := p.nextID
	p.nextID++
	vm, err := p.boot(id)
	if err != nil {
		return nil, err
	}
	inst := &instance{id: id, vm: vm, bootDur: vm.Report.Total()}
	p.fleet = append(p.fleet, inst)
	return inst, nil
}

// bootBatch boots n instances concurrently, one goroutine per instance
// on its own machine — the batched scale-up path. Instances are added
// to the fleet in id order so runs stay deterministic. On any failure
// the successful boots are closed and the first error returned.
func (p *Pool) bootBatch(n int) ([]*instance, error) {
	if n <= 0 {
		return nil, nil
	}
	insts := make([]*instance, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := p.nextID
		p.nextID++
		wg.Add(1)
		go func(slot, id int) {
			defer wg.Done()
			vm, err := p.boot(id)
			if err != nil {
				errs[slot] = err
				return
			}
			insts[slot] = &instance{id: id, vm: vm, bootDur: vm.Report.Total()}
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, inst := range insts {
				if inst != nil {
					inst.vm.Close()
				}
			}
			return nil, err
		}
	}
	p.fleet = append(p.fleet, insts...)
	return insts, nil
}
