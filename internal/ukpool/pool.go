package ukpool

import (
	"fmt"
	"math"
	"sync"
	"time"

	"unikraft/internal/sim"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukfault"
)

// BootFunc boots one fresh instance on its own simulated machine. The
// id is unique per instance for the pool's lifetime, so implementations
// can derive deterministic per-instance seeds from it. Called from
// multiple goroutines during batched scale-ups (and from per-shard
// goroutines under ServeParallel); each call must use its own machine.
type BootFunc func(id int) (*ukboot.VM, error)

// Config tunes a Pool. The zero value is not useful; New fills every
// unset field with the defaults documented per field.
type Config struct {
	// MinWarm is the floor of pre-booted instances (default 8). Serve
	// boots up to it before admitting traffic and the autoscaler never
	// shrinks below it.
	MinWarm int
	// MaxInstances caps the fleet, warm and busy together (default
	// 1024). Arrivals beyond the cap queue instead of cold-booting.
	MaxInstances int
	// ColdBurst bounds cold boots in flight at once (default 32). A
	// miss beyond it queues instead of booting: with multi-millisecond
	// boots, unbounded demand-driven boots would storm the fleet to its
	// cap before the first instance comes up. Growing past the burst
	// allowance is the autoscaler's job.
	ColdBurst int
	// SyscallsPerRequest is the number of shim-translated syscalls an
	// instance issues per request (default 4: read, work, write, close).
	SyscallsPerRequest int
	// AppCycles is the application-level work per request in CPU cycles
	// (default 12000, ~3.3us at 3.6GHz).
	AppCycles uint64
	// RecycleEvery resets an instance's heap after this many served
	// requests (default 4096; 0 disables recycling).
	RecycleEvery int
	// ScaleWindow is the autoscaler's observation window and tick
	// period (default 50ms of virtual time).
	ScaleWindow time.Duration
	// TargetP99 is the request-latency SLO; a window whose p99 exceeds
	// it triggers a scale-up regardless of utilization (default 2ms).
	TargetP99 time.Duration
	// Headroom multiplies the Little's-law concurrency estimate
	// (arrival rate x mean service time) when sizing the warm set
	// (default 2.0).
	Headroom float64
	// Autoscale enables the rate/latency-driven warm-set controller
	// (default on; DisableAutoscale turns it off).
	Autoscale bool
	// PerRequestHeap makes every request malloc/free its payload buffer
	// on the instance's real heap allocator (default on).
	PerRequestHeap bool
	// ZeroCopy drops the per-request payload copy charges (RX and TX)
	// from the service-time model — the Spec's WithZeroCopy plumbed
	// into the serving layer (default off: the copying path is the
	// calibrated baseline).
	ZeroCopy bool
	// KickBatch amortizes the two per-request virtqueue kicks
	// (VM-exit-class cost) over a batch of n requests, the Spec's
	// WithTxBatch (default 1: one pair of kicks per request).
	KickBatch int
	// RequestWork, when set, runs inside every request's service window
	// with the serving instance's VM and the pool-wide request ordinal
	// (1-based, deterministic under Serve and per shard under
	// ServeParallel). Whatever it charges to the instance's machine —
	// e.g. driving the VM's VFS through an open/sendfile/close per
	// request, the fileserve experiment's workload — lands in that
	// request's service time.
	RequestWork func(vm *ukboot.VM, seq int)
	// Faults is the pool-level fault model (default none): each request
	// crashes its serving instance mid-service with probability
	// Faults.Hazard, drawn deterministically from FaultSeed and the
	// request's identity. The partial service is charged, the instance
	// is restarted in its slot through the usual spawn path (a fork
	// clone when the pool has a template), and the request retries on
	// another instance up to CrashRetries times before counting Failed.
	Faults ukfault.VMFaults
	// FaultSeed domain-separates this pool's crash draws (hosts in a
	// cluster get distinct seeds derived from the plan seed).
	FaultSeed uint64
	// CrashRetries bounds per-request crash retries (default 2).
	CrashRetries int
	// BreakerAfter is the circuit breaker: an instance that crashes this
	// many times without completing a request in between is retired
	// instead of restarted (default 3; 0 disables the breaker).
	BreakerAfter int
	// SeriesWindow, when > 0, additionally buckets completion latencies
	// into fixed windows of virtual time (Report.Series) — the timeline
	// the chaos experiment derives recovery time from.
	SeriesWindow time.Duration
	// DefaultDeadline, when > 0, stamps every request that arrives
	// without its own deadline: deadline = origin + DefaultDeadline
	// (origin is the front-door arrival when the cluster router set one,
	// the pool arrival otherwise). Requests whose deadline has already
	// passed when an instance would pick them up are dropped before any
	// service time is charged and counted Expired.
	DefaultDeadline time.Duration
	// BrownoutWater, when > 0, arms the brownout hook: a request that
	// starts service while at least this many requests are queued behind
	// it is served degraded — RequestWork is skipped and the application
	// work drops to BrownoutCycles — trading response fidelity for
	// drain rate before anything is dropped. Counted in Report.Browned.
	BrownoutWater int
	// BrownoutCycles is the degraded-mode application work per request
	// (default AppCycles / 2).
	BrownoutCycles uint64
	// SlowFactor > 1 multiplies every service time by that factor inside
	// the virtual-time window [SlowFrom, SlowTo) — external interference
	// (a noisy neighbor, a failing disk) that slows the host without
	// charging its CPU. SlowTo <= SlowFrom means "until the trace ends".
	// The fault plan's slow-host scenarios map here.
	SlowFactor       float64
	SlowFrom, SlowTo time.Duration
	// ForkBoot, when set, replaces every instance instantiation (warm
	// floor, demand cold boots, autoscaler scale-ups) with a
	// snapshot-fork clone — the Spec's WithSnapshotBoot plumbed into the
	// fleet. The template belongs to whoever built the pool; see
	// WithOnClose for releasing it.
	ForkBoot BootFunc
	// OnClose runs once when the pool is closed — the hook the runtime
	// uses to release the pool-owned snapshot template.
	OnClose func()
	// NewLoop, when set, supplies the event-loop engine every serve
	// (and every shard of a parallel serve) runs on. Default nil uses
	// the timer-wheel sim.EventLoop; the engine experiment swaps in
	// sim.NewHeapLoop to race the two engines over identical traces.
	// Any engine satisfying sim.Loop's dispatch-order contract
	// (ascending timestamp, admission order within an instant) yields
	// byte-identical reports.
	NewLoop func() sim.Loop
}

// Option adjusts a Config.
type Option func(*Config)

// WithWarm sets the warm-instance floor.
func WithWarm(n int) Option { return func(c *Config) { c.MinWarm = n } }

// WithMaxInstances caps the fleet size.
func WithMaxInstances(n int) Option { return func(c *Config) { c.MaxInstances = n } }

// WithColdBurst bounds demand-driven cold boots in flight at once.
func WithColdBurst(n int) Option { return func(c *Config) { c.ColdBurst = n } }

// WithServiceCost sets the per-request cost model: syscall count and
// application cycles.
func WithServiceCost(syscalls int, appCycles uint64) Option {
	return func(c *Config) {
		c.SyscallsPerRequest = syscalls
		c.AppCycles = appCycles
	}
}

// WithRecycleEvery resets an instance's heap after n served requests
// (0 disables).
func WithRecycleEvery(n int) Option { return func(c *Config) { c.RecycleEvery = n } }

// WithScaleWindow sets the autoscaler tick period.
func WithScaleWindow(d time.Duration) Option { return func(c *Config) { c.ScaleWindow = d } }

// WithTargetP99 sets the latency SLO driving scale-ups.
func WithTargetP99(d time.Duration) Option { return func(c *Config) { c.TargetP99 = d } }

// WithHeadroom sets the warm-set capacity margin.
func WithHeadroom(h float64) Option { return func(c *Config) { c.Headroom = h } }

// DisableAutoscale pins the warm set at MinWarm (cold boots still
// happen on demand up to MaxInstances).
func DisableAutoscale() Option { return func(c *Config) { c.Autoscale = false } }

// DisablePerRequestHeap turns off the per-request malloc/free on the
// instance heap (pure cost-model service time).
func DisablePerRequestHeap() Option { return func(c *Config) { c.PerRequestHeap = false } }

// WithZeroCopy switches the per-request cost model to zero-copy buffer
// handoff: no payload copy charges on receive or send.
func WithZeroCopy() Option { return func(c *Config) { c.ZeroCopy = true } }

// WithKickBatch amortizes per-request virtqueue kicks over batches of n
// requests (n <= 1 means one kick pair per request).
func WithKickBatch(n int) Option { return func(c *Config) { c.KickBatch = n } }

// WithRequestWork attaches per-request instance work (see
// Config.RequestWork).
func WithRequestWork(fn func(vm *ukboot.VM, seq int)) Option {
	return func(c *Config) { c.RequestWork = fn }
}

// WithCrashHazard arms the per-request VM crash hazard, seeded for
// deterministic draws.
func WithCrashHazard(hazard float64, seed uint64) Option {
	return func(c *Config) {
		c.Faults.Hazard = hazard
		c.FaultSeed = seed
	}
}

// WithCrashRetries bounds how many times a crashed request is retried
// before it counts as Failed.
func WithCrashRetries(n int) Option { return func(c *Config) { c.CrashRetries = n } }

// WithBreaker sets the circuit-breaker threshold: consecutive crashes
// before an instance is retired instead of restarted (0 disables).
func WithBreaker(n int) Option { return func(c *Config) { c.BreakerAfter = n } }

// WithLatencySeries records per-window latency histograms
// (Report.Series) with the given window of virtual time.
func WithLatencySeries(d time.Duration) Option {
	return func(c *Config) { c.SeriesWindow = d }
}

// WithEngine selects the event-loop engine serves run on (nil restores
// the default timer wheel). The engine only changes how the dispatch
// order is computed, never what it is, so reports are byte-identical
// across engines.
func WithEngine(mk func() sim.Loop) Option {
	return func(c *Config) { c.NewLoop = mk }
}

// WithDeadline stamps a default end-to-end deadline (origin + d) on
// every request that arrives without one; expired requests are dropped
// unserved and counted Expired.
func WithDeadline(d time.Duration) Option {
	return func(c *Config) { c.DefaultDeadline = d }
}

// WithBrownout arms degraded-mode serving once the queue behind a
// dispatch reaches depth (0 disables; see Config.BrownoutWater).
func WithBrownout(depth int) Option {
	return func(c *Config) { c.BrownoutWater = depth }
}

// WithSlowdown multiplies service times by factor inside [from, to) —
// the slow-host fault scenario (factor <= 1 disables).
func WithSlowdown(from, to time.Duration, factor float64) Option {
	return func(c *Config) {
		c.SlowFrom, c.SlowTo, c.SlowFactor = from, to, factor
	}
}

// WithForkBoot makes the fleet instantiate instances by snapshot-fork
// instead of the full boot pipeline. The fork func must satisfy the
// same contract as the pool's BootFunc (own machine per call, unique
// deterministic ids).
func WithForkBoot(fork BootFunc) Option { return func(c *Config) { c.ForkBoot = fork } }

// WithOnClose registers a hook run once by Pool.Close — used to release
// pool-owned resources such as the snapshot template behind a fork
// boot.
func WithOnClose(fn func()) Option { return func(c *Config) { c.OnClose = fn } }

// instance is one booted unikernel in the fleet.
type instance struct {
	id      int
	vm      *ukboot.VM
	bootDur time.Duration
	served  int // requests since the last heap reset
	crashes int // consecutive crashes (reset on completion) for the breaker
	// fleetIdx is the instance's position in Pool.fleet, maintained so
	// retirement is O(1) instead of a fleet scan.
	fleetIdx int
	// ev is the instance's reusable timer event (service completion,
	// boot-ready, recycle-ready). At most one is outstanding per
	// instance at any moment, so the struct is embedded and recycled —
	// the hot serving path schedules no closures and allocates nothing.
	ev instEvent
}

// deque is a growable ring with O(1) operations at both ends. The idle
// set uses the back as the hot LIFO end (most recently idled) and the
// front as the cold retirement end; the request queue is plain FIFO.
// It replaces slices whose pop-front reslicing made takeColdest (and
// the wait queue behind it) O(n) in aggregate.
type deque[T any] struct {
	buf  []T
	head int
	n    int
}

func (d *deque[T]) len() int { return d.n }

func (d *deque[T]) grow() {
	size := 2 * len(d.buf)
	if size == 0 {
		size = 8
	}
	buf := make([]T, size)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf, d.head = buf, 0
}

func (d *deque[T]) pushBack(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = v
	d.n++
}

func (d *deque[T]) popBack() T {
	var zero T
	d.n--
	i := (d.head + d.n) % len(d.buf)
	v := d.buf[i]
	d.buf[i] = zero
	return v
}

func (d *deque[T]) popFront() T {
	var zero T
	v := d.buf[d.head]
	d.buf[d.head] = zero
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return v
}

func (d *deque[T]) reset() { *d = deque[T]{} }

// Pool keeps a fleet of instances of one spec and serves request
// streams through it. All methods are safe for concurrent use;
// concurrent Serve calls serialize on the pool's fleet.
type Pool struct {
	cfg  Config
	boot BootFunc

	mu     sync.Mutex
	nextID int
	fleet  []*instance      // every live instance
	idle   deque[*instance] // subset currently idle (LIFO back = cache-warm)
	closed bool
	// reqSeq numbers dispatched requests for Config.RequestWork
	// (monotone under the pool lock; per child pool under
	// ServeParallel, so hooks stay deterministic there too).
	reqSeq int
}

// New builds a pool over boot. No instances are booted until Serve (or
// Prewarm) runs.
func New(boot BootFunc, opts ...Option) *Pool {
	cfg := Config{
		MinWarm:            8,
		MaxInstances:       1024,
		ColdBurst:          32,
		SyscallsPerRequest: 4,
		AppCycles:          12_000,
		RecycleEvery:       4096,
		ScaleWindow:        50 * time.Millisecond,
		TargetP99:          2 * time.Millisecond,
		Headroom:           2.0,
		Autoscale:          true,
		PerRequestHeap:     true,
		KickBatch:          1,
		CrashRetries:       2,
		BreakerAfter:       3,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.MinWarm < 1 {
		cfg.MinWarm = 1
	}
	if cfg.MaxInstances < cfg.MinWarm {
		cfg.MaxInstances = cfg.MinWarm
	}
	if cfg.ScaleWindow <= 0 {
		cfg.ScaleWindow = 50 * time.Millisecond
	}
	if cfg.Headroom < 1 {
		cfg.Headroom = 1
	}
	if cfg.ColdBurst < 1 {
		cfg.ColdBurst = 1
	}
	if cfg.KickBatch < 1 {
		cfg.KickBatch = 1
	}
	return &Pool{cfg: cfg, boot: boot}
}

// Size reports the live fleet size (idle + busy).
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fleet)
}

// Idle reports the number of idle warm instances.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.idle.len()
}

// Close retires every instance and runs the OnClose hook (releasing
// the snapshot template behind a fork-boot pool). The pool must not be
// serving.
func (p *Pool) Close() {
	p.mu.Lock()
	for _, inst := range p.fleet {
		inst.vm.Close()
	}
	runHook := !p.closed && p.cfg.OnClose != nil
	p.fleet, p.closed = nil, true
	p.idle.reset()
	p.mu.Unlock()
	// Outside the lock: a hook that inspects the pool must not deadlock.
	if runHook {
		p.cfg.OnClose()
	}
}

// Report is the outcome of one Serve run.
type Report struct {
	// Requests is the number of requests the pool accepted. Without
	// faults every one of them completes (the pool never drops, it
	// queues); with faults Requests = completions + Failed.
	Requests int
	// WarmHits counts requests dispatched immediately to an idle warm
	// instance; ColdBoots counts requests that paid a full boot;
	// Queued counts requests that waited for an instance to free up.
	WarmHits, ColdBoots, Queued int
	// ForkBoots counts instantiations (warm floor, demand cold boots and
	// scale-ups alike) that went through the snapshot-fork path instead
	// of the full boot pipeline.
	ForkBoots int
	// Resets counts warm-instance heap recycles; Retired counts
	// instances the autoscaler shut down.
	Resets, Retired int
	// Failed counts requests lost for good: crashed more than
	// CrashRetries times, or outstanding (in service, queued, waiting
	// on a boot, or still undelivered) when a fail-stop cutoff killed
	// the host. Retried counts crash-triggered re-dispatches — a
	// request that crashes twice and then completes adds 2 to Retried,
	// 1 to completions, 0 to Failed.
	Failed, Retried int
	// Crashes counts mid-request instance crashes; BreakerTrips counts
	// instances the circuit breaker retired after repeated crashes.
	Crashes, BreakerTrips int
	// Expired counts requests dropped because their deadline passed
	// before an instance picked them up — no service time was charged
	// for them. Distinct from Failed (lost to faults) and from the
	// cluster's Shed (refused by admission before reaching a host).
	Expired int
	// Browned counts service windows started in degraded (brownout)
	// mode: RequestWork skipped, application work cut to BrownoutCycles.
	Browned int
	// ScaleUps and ScaleDowns count autoscaler resize decisions.
	ScaleUps, ScaleDowns int
	// PeakInstances is the largest fleet observed; FinalInstances the
	// fleet left warm when the trace drained. Under ServeParallel both
	// are summed across shards.
	PeakInstances, FinalInstances int
	// Duration is the virtual makespan: first arrival to last
	// completion.
	Duration time.Duration
	// Busy is the total service time across all completed requests —
	// the fleet's aggregate busy-clock. Utilization over a run is
	// Busy / (Duration x serving capacity); the cluster layer reports
	// it per host.
	Busy time.Duration
	// Boot holds per-boot total times (prewarm, cold and scale-up
	// boots); Latency holds end-to-end request latencies (queue wait +
	// boot wait + service).
	Boot Histogram
	// ColdBoot holds only the demand-driven cold instantiations —
	// the boots a request actually waited on — so serve reports quote
	// cold-start p50/p99 separately from prewarm and scale-up boots.
	ColdBoot Histogram
	// Latency holds end-to-end request latencies.
	Latency Histogram
	// Series, when Config.SeriesWindow > 0, holds one latency histogram
	// per completion-time window: Series[i] covers completions in
	// [i*W, (i+1)*W). Shard merges are element-wise (all shards share
	// the virtual timeline), so the merged series is the cluster-wide
	// latency timeline the chaos experiment reads recovery time off.
	// Windows are streaming histograms: each holds only the latency
	// buckets it actually saw, so a long trace's series costs memory
	// proportional to its windows' spread, not window count x 2KB.
	Series []StreamHist
}

// Completed is Requests minus Failed minus Expired — the requests that
// actually got a response.
func (r *Report) Completed() int { return r.Requests - r.Failed - r.Expired }

// WarmHitRatio is WarmHits / Requests, the pool's headline number.
func (r *Report) WarmHitRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.WarmHits) / float64(r.Requests)
}

// Throughput is Requests per second of virtual makespan.
func (r *Report) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Duration.Seconds()
}

// Merge folds another report's aggregates into r: counters add,
// histograms merge bucket-wise, and the makespan is the max. Used by
// ServeParallel for the deterministic shard merge.
func (r *Report) Merge(o *Report) {
	r.Requests += o.Requests
	r.WarmHits += o.WarmHits
	r.ColdBoots += o.ColdBoots
	r.ForkBoots += o.ForkBoots
	r.Queued += o.Queued
	r.Resets += o.Resets
	r.Retired += o.Retired
	r.Failed += o.Failed
	r.Retried += o.Retried
	r.Crashes += o.Crashes
	r.BreakerTrips += o.BreakerTrips
	r.Expired += o.Expired
	r.Browned += o.Browned
	r.ScaleUps += o.ScaleUps
	r.ScaleDowns += o.ScaleDowns
	r.PeakInstances += o.PeakInstances
	r.FinalInstances += o.FinalInstances
	if o.Duration > r.Duration {
		r.Duration = o.Duration
	}
	r.Busy += o.Busy
	r.Boot.Merge(&o.Boot)
	r.ColdBoot.Merge(&o.ColdBoot)
	r.Latency.Merge(&o.Latency)
	for len(r.Series) < len(o.Series) {
		r.Series = append(r.Series, StreamHist{})
	}
	for i := range o.Series {
		r.Series[i].Merge(&o.Series[i])
	}
}

// String renders the multi-line summary ukserve prints.
func (r *Report) String() string {
	routing := fmt.Sprintf("routing  warm=%d (%.2f%%) cold=%d queued=%d",
		r.WarmHits, 100*r.WarmHitRatio(), r.ColdBoots, r.Queued)
	if r.ForkBoots > 0 {
		routing += fmt.Sprintf(" forked=%d", r.ForkBoots)
	}
	out := fmt.Sprintf(
		"served   %d requests in %v (%.0f req/s)\n"+
			"%s\n"+
			"fleet    peak=%d final=%d scale-ups=%d scale-downs=%d retired=%d resets=%d\n"+
			"boot     %v\n",
		r.Requests, r.Duration.Round(time.Microsecond), r.Throughput(),
		routing,
		r.PeakInstances, r.FinalInstances, r.ScaleUps, r.ScaleDowns, r.Retired, r.Resets,
		&r.Boot)
	if r.ColdBoot.Count > 0 {
		out += fmt.Sprintf("coldboot %v\n", &r.ColdBoot)
	}
	if r.Crashes > 0 || r.Failed > 0 || r.Retried > 0 {
		out += fmt.Sprintf("faults   crashes=%d retried=%d failed=%d breaker-trips=%d\n",
			r.Crashes, r.Retried, r.Failed, r.BreakerTrips)
	}
	if r.Expired > 0 || r.Browned > 0 {
		out += fmt.Sprintf("overload expired=%d browned=%d\n", r.Expired, r.Browned)
	}
	return out + fmt.Sprintf("latency  %v", &r.Latency)
}

// serveState is the per-Serve bookkeeping threaded through the event
// handlers. The handlers themselves (arrival, autoscaler tick, and the
// per-instance timer) are embedded reusable structs: the steady-state
// serving loop schedules by pointer and allocates nothing per event.
type serveState struct {
	loop  sim.Loop
	w     Workload
	wDone bool
	rep   *Report
	err   error

	busy     int
	booting  int // cold + scale-up boots in flight
	bootWait int // subset of booting with a request waiting on the boot
	queue    deque[Request]
	lastEnd  time.Duration

	arrEv  arrivalEvent
	tickEv tickEvent

	// autoscaler window
	winArrivals int
	winCold     int
	winLat      Histogram
	ewmaService time.Duration
	// ewmaBoot tracks instantiation cost (full boots or forks): the
	// autoscaler's Little's-law sizing includes the boot residence of
	// the window's cold share, so a cheaper cold boot — the snapshot
	// fork — directly shrinks the warm set the controller keeps.
	ewmaBoot time.Duration
}

// observeBoot feeds one instantiation time into the autoscaler's boot
// cost model (alpha = 1/8, like the service EWMA).
func (st *serveState) observeBoot(d time.Duration) {
	if st.ewmaBoot == 0 {
		st.ewmaBoot = d
	} else {
		st.ewmaBoot += (d - st.ewmaBoot) / 8
	}
}

// arrivalEvent delivers the next workload request; exactly one is
// outstanding at a time, so one embedded instance is recycled for the
// whole trace.
type arrivalEvent struct {
	p   *Pool
	st  *serveState
	req Request
}

func (e *arrivalEvent) Fire(now time.Duration) { e.p.arrive(e.st, e.req, now) }

// tickEvent is the autoscaler timer; it reschedules itself.
type tickEvent struct {
	p  *Pool
	st *serveState
}

func (e *tickEvent) Fire(now time.Duration) { e.p.tick(e.st, now) }

// instEvent kinds.
const (
	evComplete  = iota // service finished: record latency, free the instance
	evBootReady        // cold boot finished: serve the request that triggered it
	evReady            // instance dispatchable (scale-up boot or recycle done)
	evCrash            // instance fail-stopped mid-request (fault hazard)
)

// instEvent is the per-instance timer payload (see instance.ev).
type instEvent struct {
	p    *Pool
	st   *serveState
	inst *instance
	kind int
	req  Request       // evBootReady: the request waiting on this boot; evCrash: the victim
	lat  time.Duration // evComplete: end-to-end latency
	svc  time.Duration // evComplete: service time for the EWMA; evCrash: partial work burned
}

func (e *instEvent) Fire(now time.Duration) {
	p, st := e.p, e.st
	switch e.kind {
	case evComplete:
		st.busy--
		if now > st.lastEnd {
			st.lastEnd = now
		}
		st.rep.Latency.Record(e.lat)
		st.rep.Busy += e.svc
		st.winLat.Record(e.lat)
		if w := p.cfg.SeriesWindow; w > 0 {
			idx := int(now / w)
			for len(st.rep.Series) <= idx {
				st.rep.Series = append(st.rep.Series, StreamHist{})
			}
			st.rep.Series[idx].Record(e.lat)
		}
		// EWMA of service time feeds the autoscaler's Little's-law
		// estimate (alpha = 1/8).
		if st.ewmaService == 0 {
			st.ewmaService = e.svc
		} else {
			st.ewmaService += (e.svc - st.ewmaService) / 8
		}
		p.finishInstance(st, e.inst, now)
	case evBootReady:
		st.booting--
		st.bootWait--
		p.startService(st, e.inst, e.req, now)
	case evReady:
		st.booting--
		p.dispatch(st, e.inst, now)
	case evCrash:
		st.busy--
		if now > st.lastEnd {
			st.lastEnd = now
		}
		// Copy the victim out first: e aliases inst.ev, which
		// crashInstance reuses for the restarted instance's ready event.
		req := e.req
		st.rep.Crashes++
		st.rep.Busy += e.svc // the partial work burned before the crash
		p.crashInstance(st, e.inst, now)
		if req.Attempt >= p.cfg.CrashRetries {
			st.rep.Failed++
		} else {
			req.Attempt++
			st.rep.Retried++
			p.redispatch(st, req, now)
		}
	}
}

// Prewarm boots the fleet up to n instances (batched, concurrently),
// recording nothing. Serve prewarms to MinWarm automatically; callers
// that want boot costs off the serving path can prewarm larger sets
// explicitly.
func (p *Pool) Prewarm(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("ukpool: prewarm on closed pool")
	}
	insts, err := p.bootBatch(n - len(p.fleet))
	if err != nil {
		return err
	}
	for _, inst := range insts {
		p.idle.pushBack(inst)
	}
	return nil
}

// Serve routes every request of w through the fleet on a fresh
// virtual-time event loop and reports what happened. Warm instances
// serve immediately; misses cold-boot (paying the full boot pipeline on
// a fresh per-instance machine) up to MaxInstances, beyond which
// requests queue FIFO. The autoscaler resizes the warm set every
// ScaleWindow from the observed arrival rate, mean service time and
// window p99.
//
// Serve is deterministic: same workload, same config, same report.
// Concurrent Serve calls are safe and serialize.
func (p *Pool) Serve(w Workload) (*Report, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.serveLocked(w, 0)
}

// ServeOpts parameterizes ServeWith beyond the plain Serve contract.
type ServeOpts struct {
	// Shards > 1 runs the sharded parallel engine (see ServeParallel).
	Shards int
	// CrashAt, when > 0, fail-stops the host at that virtual time:
	// events through CrashAt dispatch normally, then everything still
	// outstanding — in service, queued, waiting on a boot, or not yet
	// delivered — counts Failed. The cluster serves a crashed host's
	// pre-crash sub-trace this way.
	CrashAt time.Duration
}

// ServeWith is Serve with options: the cluster's entry point for
// serving a host that fail-stops mid-trace, sharded or not.
func (p *Pool) ServeWith(w Workload, o ServeOpts) (*Report, error) {
	if o.Shards > 1 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.serveParallelLocked(w, o.Shards, o.CrashAt)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.serveLocked(w, o.CrashAt)
}

// newLoop builds the event-loop engine a serve runs on: the configured
// one, or the timer wheel by default.
func (p *Pool) newLoop() sim.Loop {
	if p.cfg.NewLoop != nil {
		return p.cfg.NewLoop()
	}
	return sim.NewEventLoop()
}

func (p *Pool) serveLocked(w Workload, crashAt time.Duration) (*Report, error) {
	if p.closed {
		return nil, fmt.Errorf("ukpool: serve on closed pool")
	}

	st := &serveState{loop: p.newLoop(), w: w, rep: &Report{}}
	st.arrEv = arrivalEvent{p: p, st: st}
	st.tickEv = tickEvent{p: p, st: st}

	// Warm floor first, so steady traffic starts against a warm fleet.
	insts, err := p.bootBatch(p.cfg.MinWarm - len(p.fleet))
	if err != nil {
		return nil, err
	}
	for _, inst := range insts {
		st.rep.Boot.Record(inst.bootDur)
		st.observeBoot(inst.bootDur)
		p.idle.pushBack(inst)
	}
	if p.cfg.ForkBoot != nil {
		st.rep.ForkBoots += len(insts)
	}
	st.rep.PeakInstances = len(p.fleet)

	p.scheduleArrival(st)
	if p.cfg.Autoscale {
		st.loop.ScheduleAfter(p.cfg.ScaleWindow, &st.tickEv)
	}
	if crashAt > 0 {
		for {
			t, ok := st.loop.Peek()
			if !ok || t > crashAt {
				break
			}
			st.loop.Step()
		}
		p.failStop(st)
	} else {
		st.loop.Run()
	}
	// Requests still queued when the loop drained can only happen under
	// faults (the breaker emptied the fleet with the autoscaler off);
	// account them as lost rather than dropping them silently.
	for st.queue.len() > 0 {
		st.queue.popFront()
		st.rep.Failed++
	}

	st.rep.Duration = st.lastEnd
	st.rep.FinalInstances = len(p.fleet)
	if st.err != nil {
		return st.rep, st.err
	}
	return st.rep, nil
}

// failStop accounts a fail-stop crash of the whole host: requests in
// service, waiting on boots, queued, or consumed from the workload but
// never delivered are all Failed. Their partially-burned service is
// not charged — the host that did the work is gone.
func (p *Pool) failStop(st *serveState) {
	st.rep.Failed += st.busy + st.bootWait + st.queue.len()
	st.busy, st.bootWait, st.booting = 0, 0, 0
	for st.queue.len() > 0 {
		st.queue.popFront()
	}
	if !st.wDone {
		// The arrival already scheduled but never dispatched, then the
		// rest of the trace.
		st.rep.Requests++
		st.rep.Failed++
		for {
			if _, ok := st.w.Next(); !ok {
				break
			}
			st.rep.Requests++
			st.rep.Failed++
		}
		st.wDone = true
	}
}

// ServeParallel shards the trace and the fleet across per-shard event
// loops on separate goroutines and merges the shard reports in shard
// order — the scale-out path for multi-million-request traces that a
// single event loop serves sequentially.
//
// Requests are partitioned round-robin onto shards (deterministic: the
// partition depends only on arrival order); each shard runs the same
// serving algorithm as Serve over its own sub-fleet with MinWarm,
// MaxInstances and ColdBurst split evenly; instance ids are interleaved
// (shard i boots ids i, i+shards, ...) so per-instance boot seeds stay
// disjoint and reproducible. The merged report is therefore identical
// across runs regardless of goroutine scheduling, and with shards <= 1
// ServeParallel is exactly Serve.
//
// Shard fleets are per-call: each run boots them fresh (their boots are
// recorded in the report, like Serve's warm floor) and closes them when
// the trace drains. The pool's own fleet — including anything
// Prewarmed — is left untouched for subsequent Serve calls; callers
// alternating between the two engines should Prewarm only for the
// sequential one.
func (p *Pool) ServeParallel(w Workload, shards int) (*Report, error) {
	if shards <= 1 {
		return p.Serve(w)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.serveParallelLocked(w, shards, 0)
}

func (p *Pool) serveParallelLocked(w Workload, shards int, crashAt time.Duration) (*Report, error) {
	if shards <= 1 {
		return p.serveLocked(w, crashAt)
	}
	if p.closed {
		return nil, fmt.Errorf("ukpool: serve on closed pool")
	}

	parts := make([][]Request, shards)
	for i := 0; ; i++ {
		req, ok := w.Next()
		if !ok {
			break
		}
		parts[i%shards] = append(parts[i%shards], req)
	}

	// Shard instance ids start past everything this pool ever issued, so
	// BootFunc's id-uniqueness contract (and the per-id boot seeds
	// derived from it) holds even when Serve/Prewarm ran first.
	base := p.nextID
	ceil := func(v int) int { return (v + shards - 1) / shards }
	children := make([]*Pool, shards)
	for s := 0; s < shards; s++ {
		cfg := p.cfg
		cfg.MinWarm = ceil(cfg.MinWarm)
		cfg.MaxInstances = ceil(cfg.MaxInstances)
		cfg.ColdBurst = ceil(cfg.ColdBurst)
		if cfg.BrownoutWater > 0 {
			cfg.BrownoutWater = ceil(cfg.BrownoutWater)
		}
		// The template (and its OnClose hook) stays with the parent:
		// children remap instance ids into the parent's fork/boot funcs
		// and must not release shared state when they close.
		cfg.OnClose = nil
		shard := s
		remap := func(id int) int { return base + id*shards + shard }
		if fork := p.cfg.ForkBoot; fork != nil {
			cfg.ForkBoot = func(id int) (*ukboot.VM, error) { return fork(remap(id)) }
		}
		children[s] = &Pool{cfg: cfg, boot: func(id int) (*ukboot.VM, error) {
			return p.boot(remap(id))
		}}
	}

	// Shards run under the bounded deterministic worker pool: results
	// land in per-shard slots and merge in shard order below, so the
	// report is independent of which worker ran which shard.
	reps := make([]*Report, shards)
	errs := make([]error, shards)
	sim.ParallelFor(shards, func(s int) {
		c := children[s]
		c.mu.Lock()
		reps[s], errs[s] = c.serveLocked(NewTrace(parts[s]), crashAt)
		c.mu.Unlock()
	})

	// Burn the id range the shards consumed so later Serve calls on
	// this pool cannot collide with it.
	maxChild := 0
	for _, c := range children {
		if c.nextID > maxChild {
			maxChild = c.nextID
		}
	}
	p.nextID = base + maxChild*shards

	merged := &Report{}
	var firstErr error
	for s := 0; s < shards; s++ {
		if errs[s] != nil && firstErr == nil {
			firstErr = fmt.Errorf("ukpool: shard %d: %w", s, errs[s])
		}
		if reps[s] != nil {
			merged.Merge(reps[s])
		}
		children[s].Close()
	}
	if firstErr != nil {
		return merged, firstErr
	}
	return merged, nil
}

// scheduleArrival pulls the next request off the workload and schedules
// its arrival event.
func (p *Pool) scheduleArrival(st *serveState) {
	if st.err != nil {
		st.wDone = true
		return
	}
	req, ok := st.w.Next()
	if !ok {
		st.wDone = true
		return
	}
	st.arrEv.req = req
	st.loop.ScheduleAt(req.Arrival, &st.arrEv)
}

// expired reports whether req's deadline (if any) has passed at now.
func expired(req Request, now time.Duration) bool {
	return req.Deadline > 0 && now >= req.Deadline
}

// arrive routes one request: warm hit, cold boot, or queue.
func (p *Pool) arrive(st *serveState, req Request, now time.Duration) {
	st.rep.Requests++
	st.winArrivals++
	if p.cfg.DefaultDeadline > 0 && req.Deadline == 0 {
		origin := req.Arrival
		if req.Origin != 0 {
			origin = req.Origin
		}
		req.Deadline = origin + p.cfg.DefaultDeadline
	}
	// A request can show up dead on arrival when routing and link delay
	// already ate its whole allowance; booting or queueing for it would
	// be pure waste.
	if expired(req, now) {
		st.rep.Expired++
		p.scheduleArrival(st)
		return
	}
	switch {
	case p.idle.len() > 0:
		inst := p.takeIdle()
		st.rep.WarmHits++
		p.startService(st, inst, req, now)
	case len(p.fleet) < p.cfg.MaxInstances && st.booting < p.cfg.ColdBurst:
		st.rep.ColdBoots++
		st.winCold++
		inst, err := p.bootOne()
		if err != nil {
			st.err = fmt.Errorf("ukpool: cold boot: %w", err)
			break
		}
		if p.cfg.ForkBoot != nil {
			st.rep.ForkBoots++
		}
		st.rep.Boot.Record(inst.bootDur)
		st.rep.ColdBoot.Record(inst.bootDur)
		st.observeBoot(inst.bootDur)
		if len(p.fleet) > st.rep.PeakInstances {
			st.rep.PeakInstances = len(p.fleet)
		}
		st.booting++
		st.bootWait++
		inst.ev = instEvent{p: p, st: st, inst: inst, kind: evBootReady, req: req}
		st.loop.ScheduleAt(now+inst.bootDur, &inst.ev)
	default:
		st.rep.Queued++
		st.queue.pushBack(req)
	}
	p.scheduleArrival(st)
}

// startService charges the request's work to the instance's own CPU and
// schedules the completion on the instance's reusable event. Requests
// whose deadline passed while they waited (on a boot, in the queue, or
// between crash retries) are dropped here, before any service time is
// charged, and the instance goes back to draining the queue.
func (p *Pool) startService(st *serveState, inst *instance, req Request, now time.Duration) {
	if expired(req, now) {
		st.rep.Expired++
		p.dispatch(st, inst, now)
		return
	}
	brown := p.cfg.BrownoutWater > 0 && st.queue.len() >= p.cfg.BrownoutWater
	if brown {
		st.rep.Browned++
	}
	svc := p.serviceTime(inst, req.Bytes, brown)
	if f := p.cfg.SlowFactor; f > 1 && now >= p.cfg.SlowFrom &&
		(p.cfg.SlowTo <= p.cfg.SlowFrom || now < p.cfg.SlowTo) {
		svc = time.Duration(float64(svc) * f)
	}
	st.busy++
	// The fault hazard flips the request's deterministic coin: on a
	// crash the instance dies a fraction of the way through the service
	// window and only that partial work happens.
	if crash, frac := p.cfg.Faults.Draw(p.cfg.FaultSeed, req.Arrival, req.Bytes, req.Key, req.Attempt); crash {
		partial := time.Duration(float64(svc) * frac)
		inst.ev = instEvent{p: p, st: st, inst: inst, kind: evCrash, req: req, svc: partial}
		st.loop.ScheduleAt(now+partial, &inst.ev)
		return
	}
	done := now + svc
	// Latency runs from the request's origin: its front-door arrival
	// when the cluster router stamped one, its host arrival otherwise —
	// so queue wait, boot wait, service and any routing delay all count.
	origin := req.Arrival
	if req.Origin != 0 {
		origin = req.Origin
	}
	inst.ev = instEvent{
		p: p, st: st, inst: inst,
		kind: evComplete,
		lat:  done - origin,
		svc:  svc,
	}
	st.loop.ScheduleAt(done, &inst.ev)
}

// crashInstance replaces (or retires) an instance that fail-stopped
// mid-request. Below the breaker threshold the slot is restarted
// through the usual spawn path — a fork clone when the pool has a
// snapshot template, the "restart is cheaper than tolerating a sick
// instance" economics the fault model exists to exercise. At the
// threshold the circuit breaker gives up on the slot: repeated crashes
// point at the instance's state, and re-forking it forever would burn
// boot capacity for nothing.
func (p *Pool) crashInstance(st *serveState, inst *instance, now time.Duration) {
	inst.crashes++
	old := inst.vm
	if p.cfg.BreakerAfter > 0 && inst.crashes >= p.cfg.BreakerAfter {
		st.rep.BreakerTrips++
		p.dropSlot(inst)
		old.Close()
		return
	}
	old.Close()
	id := p.nextID
	p.nextID++
	vm, err := p.spawn(id)
	if err != nil {
		st.err = fmt.Errorf("ukpool: restart crashed instance %d: %w", inst.id, err)
		p.dropSlot(inst)
		return
	}
	inst.id, inst.vm, inst.served = id, vm, 0
	inst.bootDur = vm.Report.Total()
	st.rep.Boot.Record(inst.bootDur)
	st.observeBoot(inst.bootDur)
	if p.cfg.ForkBoot != nil {
		st.rep.ForkBoots++
	}
	st.booting++
	inst.ev = instEvent{p: p, st: st, inst: inst, kind: evReady}
	st.loop.ScheduleAt(now+inst.bootDur, &inst.ev)
}

// dropSlot removes inst from the fleet without touching its VM (the
// caller owns closing it — it may already be dead).
func (p *Pool) dropSlot(inst *instance) {
	last := len(p.fleet) - 1
	i := inst.fleetIdx
	p.fleet[i] = p.fleet[last]
	p.fleet[i].fleetIdx = i
	p.fleet[last] = nil
	p.fleet = p.fleet[:last]
}

// redispatch re-enters a crashed request: straight onto a warm
// instance when one is idle, else the queue (its latency keeps running
// from the original origin, so the crash detour shows up in the tail).
func (p *Pool) redispatch(st *serveState, req Request, now time.Duration) {
	if p.idle.len() > 0 {
		p.startService(st, p.takeIdle(), req, now)
		return
	}
	st.rep.Queued++
	st.queue.pushBack(req)
}

// finishInstance recycles the instance if due, then dispatches it. The
// heap re-init is charged to the instance clock AND delays its next
// dispatch by the same amount on the shared timeline — a recycling
// instance is not serving.
func (p *Pool) finishInstance(st *serveState, inst *instance, now time.Duration) {
	inst.served++
	inst.crashes = 0 // a completed request closes the breaker's strike count
	if p.cfg.RecycleEvery > 0 && inst.served >= p.cfg.RecycleEvery {
		m := inst.vm.Machine
		start := m.CPU.Cycles()
		if err := inst.vm.Reset(); err != nil {
			st.err = fmt.Errorf("ukpool: recycle instance %d: %w", inst.id, err)
			return
		}
		inst.served = 0
		st.rep.Resets++
		resetDur := m.CPU.Duration(m.CPU.Cycles() - start)
		st.booting++ // out of rotation until the re-init completes
		inst.ev = instEvent{p: p, st: st, inst: inst, kind: evReady}
		st.loop.ScheduleAt(now+resetDur, &inst.ev)
		return
	}
	p.dispatch(st, inst, now)
}

// serviceTime performs one request's work on the instance: syscalls
// through the shim, two virtqueue kicks (amortized over KickBatch),
// payload copies in and out (elided under ZeroCopy), the application
// cycles, and (by default) a real malloc/free of the payload buffer on
// the instance heap. In brownout mode the application work drops to
// BrownoutCycles and RequestWork is skipped — the degraded variant a
// pressured server answers with instead of dropping.
func (p *Pool) serviceTime(inst *instance, bytes int, brown bool) time.Duration {
	m := inst.vm.Machine
	start := m.CPU.Cycles()
	kicks := 2 * m.Costs.VMExit / uint64(p.cfg.KickBatch)
	app := p.cfg.AppCycles
	if brown {
		if app = p.cfg.BrownoutCycles; app == 0 {
			app = p.cfg.AppCycles / 2
		}
	}
	m.Charge(uint64(p.cfg.SyscallsPerRequest)*m.Costs.UnikraftSyscall +
		kicks + app)
	if !p.cfg.ZeroCopy {
		m.ChargeCopy(bytes) // rx
		m.ChargeCopy(bytes) // tx
	}
	if p.cfg.PerRequestHeap && bytes > 0 {
		if ptr, err := inst.vm.Heap.Malloc(bytes); err == nil {
			_ = inst.vm.Heap.Free(ptr)
		}
	}
	if p.cfg.RequestWork != nil && !brown {
		p.reqSeq++
		p.cfg.RequestWork(inst.vm, p.reqSeq)
	}
	return m.CPU.Duration(m.CPU.Cycles() - start)
}

// tick is one autoscaler evaluation: size the warm set from the
// window's arrival rate and the service-time EWMA (Little's law with
// headroom), and override upward when the window p99 blows the SLO.
func (p *Pool) tick(st *serveState, now time.Duration) {
	if st.err != nil {
		return // the serve run is failing; stop resizing and let it drain
	}
	rate := float64(st.winArrivals) / p.cfg.ScaleWindow.Seconds()
	desired := p.cfg.MinWarm
	if st.ewmaService > 0 {
		// Little's law over the effective residence time: service plus
		// the boot latency paid by the window's cold share. Expensive
		// boots make misses costly, so the controller holds more warm
		// capacity; snapshot forks shrink the term — and the fleet —
		// for the same traffic.
		eff := st.ewmaService
		if st.winArrivals > 0 && st.winCold > 0 && st.ewmaBoot > 0 {
			eff += time.Duration(float64(st.ewmaBoot) * float64(st.winCold) / float64(st.winArrivals))
		}
		need := int(math.Ceil(rate * eff.Seconds() * p.cfg.Headroom))
		if need > desired {
			desired = need
		}
	}
	if st.winLat.Count > 0 && p.cfg.TargetP99 > 0 && st.winLat.Quantile(0.99) > p.cfg.TargetP99 {
		grow := len(p.fleet) + (len(p.fleet)+1)/2
		if grow > desired {
			desired = grow
		}
	}
	if desired > p.cfg.MaxInstances {
		desired = p.cfg.MaxInstances
	}

	switch {
	case desired > len(p.fleet):
		st.rep.ScaleUps++
		insts, err := p.bootBatch(desired - len(p.fleet))
		if err != nil {
			st.err = fmt.Errorf("ukpool: scale-up: %w", err)
			return
		}
		if p.cfg.ForkBoot != nil {
			st.rep.ForkBoots += len(insts)
		}
		for _, inst := range insts {
			st.rep.Boot.Record(inst.bootDur)
			st.observeBoot(inst.bootDur)
			st.booting++
			inst.ev = instEvent{p: p, st: st, inst: inst, kind: evReady}
			st.loop.ScheduleAt(now+inst.bootDur, &inst.ev)
		}
		if len(p.fleet) > st.rep.PeakInstances {
			st.rep.PeakInstances = len(p.fleet)
		}
	case desired < len(p.fleet) && p.idle.len() > 0:
		n := len(p.fleet) - desired
		if n > p.idle.len() {
			n = p.idle.len()
		}
		st.rep.ScaleDowns++
		for i := 0; i < n; i++ {
			p.retire(p.takeColdest())
			st.rep.Retired++
		}
	}

	st.winArrivals = 0
	st.winCold = 0
	st.winLat = Histogram{}
	if !st.wDone || st.busy > 0 || st.booting > 0 || st.queue.len() > 0 {
		st.loop.ScheduleAfter(p.cfg.ScaleWindow, &st.tickEv)
	}
}

// dispatch routes a ready instance: the oldest still-live queued
// request if any are waiting, else back to the warm set. Queued
// requests whose deadline passed while they waited are discarded here —
// iteratively, so a long run of expired entries never recurses — which
// is what keeps an expired request from ever being served ahead of a
// live one.
func (p *Pool) dispatch(st *serveState, inst *instance, now time.Duration) {
	for st.queue.len() > 0 {
		req := st.queue.popFront()
		if expired(req, now) {
			st.rep.Expired++
			continue
		}
		p.startService(st, inst, req, now)
		return
	}
	p.idle.pushBack(inst)
}

// takeIdle pops the most recently idled instance (LIFO keeps the hot
// few instances hot and lets the tail go cold for retirement).
func (p *Pool) takeIdle() *instance { return p.idle.popBack() }

// takeColdest pops the longest-idle instance — the retirement end of
// the deque.
func (p *Pool) takeColdest() *instance { return p.idle.popFront() }

// retire removes inst from the fleet (O(1) via its fleet index) and
// releases its resources.
func (p *Pool) retire(inst *instance) {
	last := len(p.fleet) - 1
	i := inst.fleetIdx
	p.fleet[i] = p.fleet[last]
	p.fleet[i].fleetIdx = i
	p.fleet[last] = nil
	p.fleet = p.fleet[:last]
	inst.vm.Close()
}

// spawn instantiates one fresh instance: the snapshot-fork path when
// the pool has one, the full boot pipeline otherwise.
func (p *Pool) spawn(id int) (*ukboot.VM, error) {
	if p.cfg.ForkBoot != nil {
		return p.cfg.ForkBoot(id)
	}
	return p.boot(id)
}

// bootOne boots a single instance and adds it to the fleet (not idle:
// the caller owns routing it).
func (p *Pool) bootOne() (*instance, error) {
	id := p.nextID
	p.nextID++
	vm, err := p.spawn(id)
	if err != nil {
		return nil, err
	}
	inst := &instance{id: id, vm: vm, bootDur: vm.Report.Total(), fleetIdx: len(p.fleet)}
	p.fleet = append(p.fleet, inst)
	return inst, nil
}

// bootBatch boots n instances concurrently on their own machines under
// the bounded worker pool — the batched scale-up path. Ids are assigned
// up front and instances are added to the fleet in id order so runs
// stay deterministic. On any failure the successful boots are closed
// and the first error returned.
func (p *Pool) bootBatch(n int) ([]*instance, error) {
	if n <= 0 {
		return nil, nil
	}
	insts := make([]*instance, n)
	errs := make([]error, n)
	firstID := p.nextID
	p.nextID += n
	sim.ParallelFor(n, func(slot int) {
		id := firstID + slot
		vm, err := p.spawn(id)
		if err != nil {
			errs[slot] = err
			return
		}
		insts[slot] = &instance{id: id, vm: vm, bootDur: vm.Report.Total()}
	})
	for _, err := range errs {
		if err != nil {
			for _, inst := range insts {
				if inst != nil {
					inst.vm.Close()
				}
			}
			return nil, err
		}
	}
	for _, inst := range insts {
		inst.fleetIdx = len(p.fleet)
		p.fleet = append(p.fleet, inst)
	}
	return insts, nil
}
