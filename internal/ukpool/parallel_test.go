package ukpool

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"unikraft/internal/ukboot"
)

// steadyTrace builds a warm-hit-only trace: arrivals spaced far wider
// than the service time, so routing is identical whether the fleet is
// sharded or not.
func steadyTrace(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Arrival: time.Duration(i+1) * time.Millisecond, Bytes: 128}
	}
	return reqs
}

// TestServeParallelMatchesSequential: for a steady all-warm trace the
// sharded run produces the same ServeReport aggregates as sequential
// Serve — same requests, routing counts, latency and boot histograms,
// fleet sizes and makespan. The shard interleaving (ids i, i+shards,
// ...) boots the same instance set, so even the per-request service
// times line up.
func TestServeParallelMatchesSequential(t *testing.T) {
	boot := testBoot(t)
	trace := steadyTrace(1000)
	opts := []Option{WithWarm(8), WithMaxInstances(8), DisableAutoscale()}

	seqPool := New(boot, opts...)
	defer seqPool.Close()
	seq, err := seqPool.Serve(NewTrace(trace))
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4} {
		parPool := New(boot, opts...)
		par, err := parPool.ServeParallel(NewTrace(trace), shards)
		parPool.Close()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("shards=%d: parallel report diverged from sequential:\n%v\nvs\n%v", shards, seq, par)
		}
	}
}

// TestServeParallelDeterministic: a bursty trace through a sharded
// fleet yields bit-for-bit the same merged report on every run,
// regardless of goroutine scheduling.
func TestServeParallelDeterministic(t *testing.T) {
	var trace []Request
	w := NewBursty(7, 20_000, 400_000, 100*time.Millisecond, 0.2, 20_000, 128)
	for {
		req, ok := w.Next()
		if !ok {
			break
		}
		trace = append(trace, req)
	}
	run := func() *Report {
		p := New(testBoot(t), WithWarm(8), WithMaxInstances(64))
		defer p.Close()
		rep, err := p.ServeParallel(NewTrace(trace), 4)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sharded runs diverged:\n%v\nvs\n%v", a, b)
	}
	if a.Requests != len(trace) || a.Latency.Count != uint64(len(trace)) {
		t.Errorf("sharded run lost requests: served %d/%d", a.Requests, len(trace))
	}
}

// TestServeParallelIDsDisjoint: mixing Prewarm/Serve with
// ServeParallel on one pool must never reissue an instance id —
// BootFunc's uniqueness contract is what keeps per-instance boot seeds
// distinct.
func TestServeParallelIDsDisjoint(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{}
	base := testBoot(t)
	boot := func(id int) (*ukboot.VM, error) {
		mu.Lock()
		seen[id]++
		mu.Unlock()
		return base(id)
	}
	p := New(boot, WithWarm(4), DisableAutoscale())
	defer p.Close()
	if err := p.Prewarm(4); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ServeParallel(NewTrace(steadyTrace(100)), 2); err != nil {
		t.Fatal(err)
	}
	// A sequential run afterwards must also stay clear of the shard ids.
	if _, err := p.Serve(NewTrace(steadyTrace(100))); err != nil {
		t.Fatal(err)
	}
	for id, n := range seen {
		if n > 1 {
			t.Errorf("instance id %d booted %d times", id, n)
		}
	}
}

func TestServeParallelClosedPool(t *testing.T) {
	p := New(testBoot(t), WithWarm(1))
	p.Close()
	if _, err := p.ServeParallel(NewTrace(steadyTrace(4)), 2); err == nil {
		t.Error("ServeParallel on closed pool succeeded")
	}
}

// TestZeroCopyAndKickBatchCostModel: the Spec-level zero-copy and kick
// batching options must shorten per-request service time, visible in
// the latency histogram of an uncontended run.
func TestZeroCopyAndKickBatchCostModel(t *testing.T) {
	serve := func(opts ...Option) *Report {
		p := New(testBoot(t), append([]Option{WithWarm(2), DisableAutoscale()}, opts...)...)
		defer p.Close()
		rep, err := p.Serve(NewTrace(steadyTrace(200)))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := serve()
	zc := serve(WithZeroCopy())
	batched := serve(WithZeroCopy(), WithKickBatch(16))
	if zc.Latency.Sum >= base.Latency.Sum {
		t.Errorf("zero-copy total latency %v >= copying %v", zc.Latency.Sum, base.Latency.Sum)
	}
	if batched.Latency.Sum >= zc.Latency.Sum {
		t.Errorf("kick-batched total latency %v >= unbatched %v", batched.Latency.Sum, zc.Latency.Sum)
	}
}

// TestRetireKeepsFleetIndexed: retiring from the middle of the fleet
// (via the coldest end of the idle deque) must keep every fleet index
// consistent — a corrupted index would retire the wrong instance later.
func TestRetireKeepsFleetIndexed(t *testing.T) {
	p := New(testBoot(t), WithWarm(6), DisableAutoscale())
	defer p.Close()
	if err := p.Prewarm(6); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	for i := 0; i < 3; i++ {
		p.retire(p.takeColdest())
	}
	for i, inst := range p.fleet {
		if inst.fleetIdx != i {
			t.Errorf("fleet[%d].fleetIdx = %d", i, inst.fleetIdx)
		}
	}
	p.mu.Unlock()
	if p.Size() != 3 || p.Idle() != 3 {
		t.Errorf("size=%d idle=%d after 3 retirements, want 3/3", p.Size(), p.Idle())
	}
}

// TestHistogramMerge: merging shard histograms equals recording the
// union directly.
func TestHistogramMerge(t *testing.T) {
	var whole, a, b Histogram
	for i := 1; i <= 2000; i++ {
		d := time.Duration(i*i%977+1) * time.Microsecond
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	var merged Histogram
	merged.Merge(&a)
	merged.Merge(&b)
	if !reflect.DeepEqual(&whole, &merged) {
		t.Errorf("merge diverged: %v vs %v", &whole, &merged)
	}
	// Merging an empty histogram is a no-op.
	before := merged
	var empty Histogram
	merged.Merge(&empty)
	if !reflect.DeepEqual(&before, &merged) {
		t.Error("merging empty histogram changed state")
	}
}
