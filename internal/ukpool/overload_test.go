package ukpool

import (
	"reflect"
	"testing"
	"time"
)

// overloadOpts pins one instance per core with a fixed service cost
// (~47us/request), so a 2.5x open-loop trace genuinely overloads the
// queue instead of hiding behind fleet elasticity.
func overloadOpts(extra ...Option) []Option {
	return append([]Option{
		WithWarm(2), WithMaxInstances(2), DisableAutoscale(),
		WithServiceCost(4, 170_000),
	}, extra...)
}

// overloadTrace: ~2 cores / 47us is ~42K req/s capacity; offer 100K.
func overloadTrace(n int, deadline time.Duration) *Overload {
	w := NewOverload(31, 100_000, n, 256)
	if deadline > 0 {
		w.Deadlines(deadline, 10*deadline)
	}
	return w
}

// TestDeadlineNeverServesExpired: with per-request deadlines the pool
// must drop expired queue entries before charging any service time —
// so every completed request was dispatched while still live, and no
// recorded latency can exceed deadline + one service time. Without the
// pre-dispatch expiry check, overload pushes completions seconds past
// their deadlines.
func TestDeadlineNeverServesExpired(t *testing.T) {
	const deadline = 5 * time.Millisecond
	p := New(testBoot(t), overloadOpts()...)
	defer p.Close()
	rep, err := p.Serve(overloadTrace(50_000, deadline))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Expired == 0 {
		t.Fatal("2.5x overload with a 5ms deadline expired nothing")
	}
	if rep.Completed() == 0 {
		t.Fatal("deadline queue served nothing")
	}
	// Latency histogram buckets are log-spaced; 4x the deadline bounds
	// the bucket edge above deadline + service time with margin.
	if frac := rep.Latency.FractionBelow(4 * deadline); frac < 1 {
		t.Errorf("%.4f of completions exceeded the deadline + service bound — expired requests were served", 1-frac)
	}
	if rep.Requests != rep.Completed()+rep.Failed+rep.Expired {
		t.Errorf("conservation broken: %d != %d + %d + %d",
			rep.Requests, rep.Completed(), rep.Failed, rep.Expired)
	}
	if uint64(rep.Completed()) != rep.Latency.Count {
		t.Errorf("latency count %d != completed %d", rep.Latency.Count, rep.Completed())
	}
}

// TestOverloadShardOneIdentity: ServeParallel with one shard must
// reproduce sequential Serve byte-for-byte with the whole overload
// surface armed — deadlines, brownout, a slowdown window.
func TestOverloadShardOneIdentity(t *testing.T) {
	opts := overloadOpts(WithBrownout(16),
		WithSlowdown(50*time.Millisecond, 150*time.Millisecond, 2))

	seqPool := New(testBoot(t), opts...)
	defer seqPool.Close()
	seq, err := seqPool.Serve(overloadTrace(30_000, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	parPool := New(testBoot(t), opts...)
	defer parPool.Close()
	par, err := parPool.ServeParallel(overloadTrace(30_000, 5*time.Millisecond), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("1-shard overload serve diverged from sequential:\n%v\nvs\n%v", seq, par)
	}
	if seq.Expired == 0 || seq.Browned == 0 {
		t.Errorf("overload path never engaged (expired=%d browned=%d)", seq.Expired, seq.Browned)
	}
}

// TestOverloadShardedDeterminism: the sharded overload path — expiry,
// brownout, per-shard queues — reproduces bit-for-bit across runs.
func TestOverloadShardedDeterminism(t *testing.T) {
	run := func() *Report {
		p := New(testBoot(t), overloadOpts(WithBrownout(16))...)
		defer p.Close()
		rep, err := p.ServeParallel(overloadTrace(30_000, 5*time.Millisecond), 4)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sharded overload runs diverged:\n%v\nvs\n%v", a, b)
	}
	if a.Requests != a.Completed()+a.Failed+a.Expired {
		t.Errorf("conservation broken: %d != %d + %d + %d",
			a.Requests, a.Completed(), a.Failed, a.Expired)
	}
}

// TestBrownoutDegradesBeforeDropping: past the queue-depth trigger the
// pool serves half-work responses instead of letting entries expire —
// more completions, fewer expiries, Browned accounting for the
// degraded ones.
func TestBrownoutDegradesBeforeDropping(t *testing.T) {
	serve := func(extra ...Option) *Report {
		p := New(testBoot(t), overloadOpts(extra...)...)
		defer p.Close()
		rep, err := p.Serve(overloadTrace(50_000, 5*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := serve()
	browned := serve(WithBrownout(16))
	if browned.Browned == 0 {
		t.Fatal("brownout never engaged under 2.5x overload")
	}
	if browned.Completed() <= plain.Completed() {
		t.Errorf("brownout served %d <= plain %d under identical overload",
			browned.Completed(), plain.Completed())
	}
	if browned.Expired >= plain.Expired {
		t.Errorf("brownout expired %d >= plain %d — degrading absorbed nothing",
			browned.Expired, plain.Expired)
	}
}

// TestDeadlineFreeIdentity: a trace without deadlines through a pool
// with brownout disarmed must be byte-identical to the same pool before
// this layer existed — i.e. the overload fields stay zero and the
// accounting identity reduces to the old one.
func TestDeadlineFreeIdentity(t *testing.T) {
	p := New(testBoot(t), overloadOpts()...)
	defer p.Close()
	rep, err := p.Serve(overloadTrace(20_000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Expired != 0 || rep.Browned != 0 {
		t.Errorf("deadline-free serve recorded expired=%d browned=%d", rep.Expired, rep.Browned)
	}
	if rep.Completed() != rep.Requests-rep.Failed {
		t.Errorf("completed %d != requests %d - failed %d", rep.Completed(), rep.Requests, rep.Failed)
	}
}
