// Package ukpool is the warm-pool serving layer: it turns the paper's
// millisecond boot times into served traffic. A Pool keeps a set of
// pre-booted ("warm") unikernel instances of one spec, boots cold
// instances on demand when arrivals outrun the warm set, routes a
// request stream to instances over a deterministic virtual-time event
// loop, and autoscales the warm set from the observed arrival rate and
// tail latency — the LightVM/Firecracker serverless story on top of the
// Unikraft boot pipeline.
package ukpool

import (
	"fmt"
	"math/bits"
	"time"
)

// histBuckets bounds the log-scale bucket index space: 8 sub-buckets
// per power of two over nanosecond values up to ~2^60ns covers every
// duration the simulator can produce.
const (
	histSubBits = 3 // 8 sub-buckets per octave: ~12% resolution
	histBuckets = 1 << (6 + histSubBits)
)

// Histogram is a log-bucketed latency histogram (HdrHistogram-style,
// integer-only so runs are bit-for-bit reproducible): ~12% relative
// resolution from 1ns to decades of virtual time, with O(1) record and
// O(buckets) percentile queries.
type Histogram struct {
	Count    uint64
	Sum      time.Duration
	MinV     time.Duration
	MaxV     time.Duration
	counts   [histBuckets]uint32
	overflow uint64
}

func bucketOf(v uint64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	k := uint(bits.Len64(v)) - 1
	sub := (v >> (k - histSubBits)) & (1<<histSubBits - 1)
	return int((k-histSubBits+1)<<histSubBits) + int(sub)
}

// bucketLow is the inverse of bucketOf: the smallest value mapping to
// bucket i.
func bucketLow(i int) uint64 {
	if i < 1<<histSubBits {
		return uint64(i)
	}
	k := uint(i>>histSubBits) + histSubBits - 1
	sub := uint64(i & (1<<histSubBits - 1))
	return 1<<k | sub<<(k-histSubBits)
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.Count == 0 || d < h.MinV {
		h.MinV = d
	}
	if d > h.MaxV {
		h.MaxV = d
	}
	h.Count++
	h.Sum += d
	i := bucketOf(uint64(d))
	if i >= histBuckets {
		h.overflow++
		return
	}
	h.counts[i]++
}

// Merge folds another histogram into h bucket-wise. Because buckets are
// integer counters, merging per-shard histograms yields bit-for-bit the
// same summary regardless of merge order grouping — the property
// ServeParallel's deterministic report relies on.
func (h *Histogram) Merge(o *Histogram) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.MinV < h.MinV {
		h.MinV = o.MinV
	}
	if o.MaxV > h.MaxV {
		h.MaxV = o.MaxV
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.overflow += o.overflow
}

// Mean reports the average observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile reports the value at quantile q in [0, 1] (bucket lower
// bound, so within ~12% of exact). Quantile(0.5) is the median.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.Count-1))
	var seen uint64
	for i, c := range h.counts {
		seen += uint64(c)
		if seen > rank {
			lo := time.Duration(bucketLow(i))
			if lo < h.MinV {
				lo = h.MinV
			}
			if lo > h.MaxV {
				lo = h.MaxV
			}
			return lo
		}
	}
	return h.MaxV
}

// FractionBelow reports the fraction of observations at most d (bucket
// granularity, so within ~12% of exact). The overload experiment scores
// an uncontrolled run's in-deadline goodput with it: completions are
// only worth counting if they landed before the answer stopped
// mattering.
func (h *Histogram) FractionBelow(d time.Duration) float64 {
	if h.Count == 0 {
		return 0
	}
	if d < 0 {
		return 0
	}
	if d >= h.MaxV {
		return 1
	}
	cut := bucketOf(uint64(d))
	if cut >= histBuckets {
		cut = histBuckets - 1
	}
	var seen uint64
	for i := 0; i <= cut; i++ {
		seen += uint64(h.counts[i])
	}
	return float64(seen) / float64(h.Count)
}

// String renders the five-number summary used in reports.
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%v p50=%v p90=%v p99=%v max=%v",
		h.Count, h.MinV, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.MaxV)
}
