package ukpool

import (
	"testing"
)

// poolServeRequests sizes the benchmark trace: a full million requests,
// the serving experiment's scale, so allocation behaviour is measured
// where it matters. allocs/op is per whole trace — the steady-state
// target is a few allocations per thousand requests (fleet boots, heap
// growth), not per request.
const poolServeRequests = 1_000_000

// BenchmarkPoolServe pushes a 1M-request steady Poisson trace through
// one pool on a single event loop. ReportAllocs guards the intrusive
// event fast path: regressions that reintroduce per-event closures show
// up as ~1M extra allocs/op.
func BenchmarkPoolServe(b *testing.B) {
	boot := testBoot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := New(boot, WithWarm(32), WithMaxInstances(256))
		rep, err := p.Serve(NewPoisson(1, 250_000, poolServeRequests, 256))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Requests != poolServeRequests {
			b.Fatalf("served %d requests", rep.Requests)
		}
		b.ReportMetric(rep.Throughput(), "virt-req/s")
		p.Close()
	}
}

// BenchmarkPoolServeParallel is the same trace through the sharded
// engine: per-shard event loops on separate goroutines, deterministic
// merge.
func BenchmarkPoolServeParallel(b *testing.B) {
	boot := testBoot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := New(boot, WithWarm(32), WithMaxInstances(256))
		rep, err := p.ServeParallel(NewPoisson(1, 250_000, poolServeRequests, 256), 4)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Requests != poolServeRequests {
			b.Fatalf("served %d requests", rep.Requests)
		}
		p.Close()
	}
}
