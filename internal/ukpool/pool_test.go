package ukpool

import (
	"reflect"
	"sync"
	"testing"
	"time"

	_ "unikraft/internal/allocators/buddy"
	_ "unikraft/internal/allocators/tlsf"
	"unikraft/internal/sim"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukplat"
)

// testBoot returns a BootFunc over a prevalidated firecracker context:
// the shape Runtime.NewPool produces.
func testBoot(t testing.TB) BootFunc {
	t.Helper()
	ctx, err := ukboot.NewContext(ukboot.Config{
		Platform:   ukplat.KVMFirecracker,
		MemBytes:   8 << 20,
		ImageBytes: 1 << 20,
		Allocator:  "tlsf",
	})
	if err != nil {
		t.Fatal(err)
	}
	return func(id int) (*ukboot.VM, error) {
		return ctx.Boot(sim.NewMachineWithSeed(uint64(id)))
	}
}

// testForkOpts returns fork-boot pool options over a snapshot of the
// same context testBoot uses, plus the snapshot itself for inspection.
func testForkOpts(t testing.TB) ([]Option, *ukboot.Snapshot) {
	t.Helper()
	ctx, err := ukboot.NewContext(ukboot.Config{
		Platform:   ukplat.KVMFirecracker,
		MemBytes:   8 << 20,
		ImageBytes: 1 << 20,
		Allocator:  "tlsf",
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ctx.Snapshot(sim.NewMachine())
	if err != nil {
		t.Fatal(err)
	}
	fork := func(id int) (*ukboot.VM, error) {
		return ctx.Fork(sim.NewMachineWithSeed(uint64(id)), snap)
	}
	return []Option{WithForkBoot(fork), WithOnClose(snap.Close)}, snap
}

// TestForkBootLowersColdLatency: the same bursty trace through a
// full-boot fleet and a fork-boot fleet — the fork pool's cold-start
// p99 and end-to-end p99 must both drop, every instantiation must go
// through the fork path, and the run must stay deterministic.
func TestForkBootLowersColdLatency(t *testing.T) {
	wl := func() Workload {
		return NewBursty(7, 20_000, 400_000, 100*time.Millisecond, 0.2, 60_000, 128)
	}
	serve := func(opts ...Option) *Report {
		p := New(testBoot(t), append([]Option{WithWarm(4), WithMaxInstances(128), WithColdBurst(4)}, opts...)...)
		defer p.Close()
		rep, err := p.Serve(wl())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	boot := serve()
	forkOpts, _ := testForkOpts(t)
	fork := serve(forkOpts...)

	if fork.ForkBoots == 0 || fork.ForkBoots != int(fork.Boot.Count) {
		t.Errorf("fork pool booted %d of %d instantiations via fork", fork.ForkBoots, fork.Boot.Count)
	}
	if boot.ForkBoots != 0 {
		t.Errorf("full-boot pool reports %d forks", boot.ForkBoots)
	}
	if fork.ColdBoot.Count == 0 || boot.ColdBoot.Count == 0 {
		t.Fatalf("bursty trace produced no cold boots (fork=%d boot=%d)", fork.ColdBoot.Count, boot.ColdBoot.Count)
	}
	fb, bb := fork.ColdBoot.Quantile(0.99), boot.ColdBoot.Quantile(0.99)
	if 2*fb > bb {
		t.Errorf("fork cold-boot p99 %v not well below full boot %v", fb, bb)
	}
	fl, bl := fork.Latency.Quantile(0.99), boot.Latency.Quantile(0.99)
	if fl >= bl {
		t.Errorf("fork p99 latency %v not below full-boot p99 %v", fl, bl)
	}

	// Determinism and shards=1 equivalence hold with forks in play.
	again := serve(forkOpts...)
	if !reflect.DeepEqual(fork, again) {
		t.Errorf("fork-boot serve not deterministic:\n%v\nvs\n%v", fork, again)
	}
	p := New(testBoot(t), append([]Option{WithWarm(4), WithMaxInstances(128), WithColdBurst(4)}, forkOpts...)...)
	defer p.Close()
	one, err := p.ServeParallel(wl(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, fork) {
		t.Errorf("ServeParallel(1) diverged from Serve with fork boots")
	}
}

// TestForkBootServeParallel: sharded serving remaps fork ids like boot
// ids and merges deterministically.
func TestForkBootServeParallel(t *testing.T) {
	forkOpts, _ := testForkOpts(t)
	opts := append([]Option{WithWarm(8), WithMaxInstances(64)}, forkOpts...)
	run := func() *Report {
		p := New(testBoot(t), opts...)
		defer p.Close()
		rep, err := p.ServeParallel(NewPoisson(3, 200_000, 40_000, 128), 4)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sharded fork-boot runs diverged")
	}
	if a.Requests != 40_000 || a.ForkBoots == 0 {
		t.Errorf("requests=%d forks=%d", a.Requests, a.ForkBoots)
	}
}

// TestOnCloseRunsOnce: the template-release hook fires exactly once.
func TestOnCloseRunsOnce(t *testing.T) {
	calls := 0
	p := New(testBoot(t), WithOnClose(func() { calls++ }))
	p.Close()
	p.Close()
	if calls != 1 {
		t.Errorf("OnClose ran %d times, want 1", calls)
	}
}

func TestSteadyLoadServesWarm(t *testing.T) {
	p := New(testBoot(t), WithWarm(8))
	defer p.Close()
	const n = 50_000
	rep, err := p.Serve(NewPoisson(1, 100_000, n, 256))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != n {
		t.Fatalf("served %d requests, want %d", rep.Requests, n)
	}
	if got := rep.WarmHitRatio(); got < 0.9 {
		t.Errorf("warm-hit ratio = %.3f, want > 0.9 under steady load", got)
	}
	if rep.Latency.Count != n {
		t.Errorf("latency histogram holds %d samples, want %d", rep.Latency.Count, n)
	}
	if rep.Duration <= 0 || rep.Throughput() <= 0 {
		t.Errorf("degenerate report: duration=%v throughput=%f", rep.Duration, rep.Throughput())
	}
	if rep.Boot.Count == 0 {
		t.Error("no boots recorded despite prewarming")
	}
	// Warm service must be far below the ~3ms firecracker boot.
	if p50 := rep.Latency.Quantile(0.5); p50 > time.Millisecond {
		t.Errorf("median latency %v, want well under a boot time", p50)
	}
}

func TestServeIsDeterministic(t *testing.T) {
	run := func() *Report {
		p := New(testBoot(t), WithWarm(4), WithMaxInstances(64))
		defer p.Close()
		rep, err := p.Serve(NewBursty(7, 20_000, 400_000, 100*time.Millisecond, 0.2, 30_000, 128))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical runs diverged:\n%v\nvs\n%v", a, b)
	}
}

func TestColdBootsAndQueueing(t *testing.T) {
	// 32 simultaneous arrivals against 2 warm instances and a fleet cap
	// of 4: 2 warm hits, 2 cold boots, 28 queued.
	reqs := make([]Request, 32)
	for i := range reqs {
		reqs[i] = Request{Arrival: time.Millisecond, Bytes: 64}
	}
	p := New(testBoot(t), WithWarm(2), WithMaxInstances(4), DisableAutoscale())
	defer p.Close()
	rep, err := p.Serve(NewTrace(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if rep.WarmHits != 2 || rep.ColdBoots != 2 || rep.Queued != 28 {
		t.Errorf("routing = warm %d / cold %d / queued %d, want 2/2/28",
			rep.WarmHits, rep.ColdBoots, rep.Queued)
	}
	if rep.Requests != 32 || rep.Latency.Count != 32 {
		t.Errorf("not all requests served: %d (%d measured)", rep.Requests, rep.Latency.Count)
	}
	// Queued requests wait for service; cold ones wait for a boot. The
	// max latency must exceed a cold boot, the min must not.
	if rep.Latency.MaxV < rep.Boot.MinV {
		t.Errorf("max latency %v below boot time %v despite cold boots", rep.Latency.MaxV, rep.Boot.MinV)
	}
	if rep.Latency.MinV >= rep.Boot.MinV {
		t.Errorf("min latency %v not warm (boot is %v)", rep.Latency.MinV, rep.Boot.MinV)
	}
}

func TestAutoscaleGrowsAndShrinks(t *testing.T) {
	// Heavy per-request work (~47us) and a tight cold-burst allowance:
	// bursts outrun demand-driven boots, so growing the fleet is the
	// autoscaler's job, and the idle tail between bursts lets the
	// controller shrink back.
	p := New(testBoot(t), WithWarm(2), WithMaxInstances(256), WithColdBurst(2),
		WithServiceCost(4, 170_000), WithScaleWindow(20*time.Millisecond))
	defer p.Close()
	rep, err := p.Serve(NewBursty(3, 5_000, 300_000, 100*time.Millisecond, 0.3, 60_000, 128))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScaleUps == 0 {
		t.Errorf("autoscaler never scaled up: %+v", rep)
	}
	if rep.ScaleDowns == 0 || rep.Retired == 0 {
		t.Errorf("autoscaler never shrank (downs=%d retired=%d)", rep.ScaleDowns, rep.Retired)
	}
	if rep.PeakInstances <= 2 {
		t.Errorf("peak fleet %d never grew past the warm floor", rep.PeakInstances)
	}
	if rep.FinalInstances < 2 {
		t.Errorf("final fleet %d fell below the MinWarm floor", rep.FinalInstances)
	}
}

func TestRecycleResetsInstances(t *testing.T) {
	serve := func(recycleEvery int) *Report {
		p := New(testBoot(t), WithWarm(1), WithMaxInstances(1),
			WithRecycleEvery(recycleEvery), DisableAutoscale())
		defer p.Close()
		// Overloaded single server: every reset lands on the critical
		// path, so its delay is visible in the makespan.
		rep, err := p.Serve(NewPoisson(5, 500_000, 100, 64))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := serve(10)
	if rep.Resets != 10 {
		t.Errorf("resets = %d, want 10 (100 requests / recycle every 10)", rep.Resets)
	}
	// Recycling is not free on the timeline: the heap re-init delays the
	// instance, so the recycled run must take longer than the same trace
	// without recycling.
	if base := serve(0); base.Resets != 0 || rep.Duration <= base.Duration {
		t.Errorf("recycled run %v not slower than reset-free run %v (resets=%d)",
			rep.Duration, base.Duration, base.Resets)
	}
}

func TestPrewarmAndClose(t *testing.T) {
	p := New(testBoot(t), WithWarm(4))
	if err := p.Prewarm(6); err != nil {
		t.Fatal(err)
	}
	if p.Size() != 6 || p.Idle() != 6 {
		t.Errorf("after Prewarm(6): size=%d idle=%d", p.Size(), p.Idle())
	}
	p.Close()
	if p.Size() != 0 {
		t.Errorf("size after Close = %d", p.Size())
	}
	if _, err := p.Serve(NewPoisson(1, 1000, 10, 64)); err == nil {
		t.Error("Serve on closed pool succeeded")
	}
}

// TestConcurrentServe exercises the fleet under -race: several
// goroutines serving the same pool must serialize cleanly, and every
// stream must see all of its requests served.
func TestConcurrentServe(t *testing.T) {
	p := New(testBoot(t), WithWarm(4))
	defer p.Close()
	const streams, n = 4, 5_000
	var wg sync.WaitGroup
	reps := make([]*Report, streams)
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = p.Serve(NewPoisson(uint64(i), 80_000, n, 128))
		}(i)
	}
	wg.Wait()
	for i := 0; i < streams; i++ {
		if errs[i] != nil {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		if reps[i].Requests != n {
			t.Errorf("stream %d served %d, want %d", i, reps[i].Requests, n)
		}
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zero")
	}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count != 1000 || h.MinV != time.Microsecond || h.MaxV != time.Millisecond {
		t.Fatalf("summary wrong: %v", &h)
	}
	// Bucketed quantiles are lower bounds within ~12% resolution.
	for _, q := range []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Microsecond}, {0.9, 900 * time.Microsecond}, {0.99, 990 * time.Microsecond}} {
		got := h.Quantile(q.q)
		if got > q.want || float64(got) < 0.85*float64(q.want) {
			t.Errorf("Quantile(%v) = %v, want within 12%% below %v", q.q, got, q.want)
		}
	}
	if m := h.Mean(); m < 490*time.Microsecond || m > 510*time.Microsecond {
		t.Errorf("mean = %v, want ~500.5us", m)
	}
	// Bucket mapping is exact on the round trip: low(bucket(v)) <= v.
	for _, v := range []uint64{0, 1, 7, 8, 255, 1 << 20, 1<<60 - 1} {
		i := bucketOf(v)
		if lo := bucketLow(i); lo > v {
			t.Errorf("bucketLow(bucketOf(%d)) = %d > input", v, lo)
		}
		if i > 0 && bucketLow(i-1) >= bucketLow(i) {
			t.Errorf("bucket bounds not monotone at %d", i)
		}
	}
}

func TestWorkloadShapes(t *testing.T) {
	// Poisson: n requests, non-decreasing arrivals, mean rate in the
	// right ballpark.
	p := NewPoisson(42, 100_000, 10_000, 64)
	var last, end time.Duration
	count := 0
	for {
		req, ok := p.Next()
		if !ok {
			break
		}
		if req.Arrival < last {
			t.Fatal("arrivals not monotone")
		}
		last, end = req.Arrival, req.Arrival
		count++
	}
	if count != 10_000 {
		t.Fatalf("poisson emitted %d requests", count)
	}
	rate := float64(count) / end.Seconds()
	if rate < 90_000 || rate > 110_000 {
		t.Errorf("poisson empirical rate %.0f, want ~100000", rate)
	}

	// Bursty: the burst phase must pack more arrivals than the base
	// phase.
	b := NewBursty(42, 10_000, 500_000, 100*time.Millisecond, 0.2, 20_000, 64)
	var inBurst, inBase int
	for {
		req, ok := b.Next()
		if !ok {
			break
		}
		if req.Arrival%(100*time.Millisecond) < 20*time.Millisecond {
			inBurst++
		} else {
			inBase++
		}
	}
	if inBurst <= inBase {
		t.Errorf("bursty trace not bursty: %d in-burst vs %d in-base", inBurst, inBase)
	}
}
