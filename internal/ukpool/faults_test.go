package ukpool

import (
	"reflect"
	"testing"
	"time"
)

// TestCrashHazardRestartsAndRetries: under a mid-request crash hazard
// the pool charges partial work, restarts the instance by a fresh boot,
// and redispatches the request — every offered request still resolves
// to a completion or an explicit failure, and the run reproduces
// bit-for-bit.
func TestCrashHazardRestartsAndRetries(t *testing.T) {
	run := func() *Report {
		p := New(testBoot(t), WithWarm(4), WithMaxInstances(16),
			WithCrashHazard(0.02, 99))
		defer p.Close()
		rep, err := p.Serve(NewPoisson(7, 50_000, 50_000, 256))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if rep.Crashes == 0 {
		t.Fatal("2% hazard over 50K requests produced no crashes")
	}
	if rep.Retried == 0 {
		t.Error("crashes never redispatched the request")
	}
	if rep.Requests != rep.Completed()+rep.Failed {
		t.Errorf("conservation broken: %d requests != %d completed + %d failed",
			rep.Requests, rep.Completed(), rep.Failed)
	}
	if got := int(rep.Latency.Count); got != rep.Completed() {
		t.Errorf("latency samples %d != completions %d", got, rep.Completed())
	}
	if other := run(); !reflect.DeepEqual(rep, other) {
		t.Errorf("two identical hazard runs diverged:\n%v\n----\n%v", rep, other)
	}
}

// TestCrashRetriesExhaust: with the hazard at 1.0 every attempt
// crashes, so every request burns its retries and fails — none may
// vanish, none may complete.
func TestCrashRetriesExhaust(t *testing.T) {
	p := New(testBoot(t), WithWarm(2), WithMaxInstances(8),
		WithCrashHazard(1.0, 3), WithCrashRetries(1), WithBreaker(1000))
	defer p.Close()
	rep, err := p.Serve(NewPoisson(5, 20_000, 500, 256))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != rep.Requests || rep.Completed() != 0 {
		t.Errorf("hazard 1.0: want all %d requests failed, got failed=%d completed=%d",
			rep.Requests, rep.Failed, rep.Completed())
	}
	if rep.Retried != rep.Requests {
		t.Errorf("retries=1: want %d redispatches, got %d", rep.Requests, rep.Retried)
	}
}

// TestBreakerRetiresInstance: with the breaker at one consecutive
// crash, every crash retires its instance instead of restarting it.
func TestBreakerRetiresInstance(t *testing.T) {
	p := New(testBoot(t), WithWarm(4), WithMaxInstances(32),
		WithCrashHazard(0.05, 11), WithBreaker(1))
	defer p.Close()
	rep, err := p.Serve(NewPoisson(9, 50_000, 20_000, 256))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 {
		t.Fatal("no crashes at 5% hazard")
	}
	if rep.BreakerTrips != rep.Crashes {
		t.Errorf("breaker=1: every crash must trip it, got %d trips for %d crashes",
			rep.BreakerTrips, rep.Crashes)
	}
}

// TestCrashDrawIsShardInvariant: crash draws key on request identity,
// not serve order, so the fault-free single-shard contract stays:
// ServeParallel with one shard is byte-identical to Serve even with a
// hazard armed.
func TestCrashDrawIsShardInvariant(t *testing.T) {
	serve := func(shards int) *Report {
		p := New(testBoot(t), WithWarm(4), WithMaxInstances(16),
			WithCrashHazard(0.01, 42))
		defer p.Close()
		var rep *Report
		var err error
		if shards == 0 {
			rep, err = p.Serve(NewPoisson(3, 40_000, 30_000, 256))
		} else {
			rep, err = p.ServeParallel(NewPoisson(3, 40_000, 30_000, 256), shards)
		}
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq, one := serve(0), serve(1)
	if !reflect.DeepEqual(seq, one) {
		t.Errorf("1-shard ServeParallel diverged from Serve under hazard:\n%v\n----\n%v", seq, one)
	}
	// Across shard counts the schedule legitimately differs, but the
	// identity-keyed draws must keep the crash population stable for
	// requests that aren't rescheduled: total crashes stay within the
	// same order, and conservation holds per run.
	two := serve(2)
	if two.Requests != two.Completed()+two.Failed {
		t.Errorf("2-shard conservation broken: %d != %d + %d",
			two.Requests, two.Completed(), two.Failed)
	}
	if two.Crashes == 0 {
		t.Error("2-shard run lost the hazard entirely")
	}
}

// TestLatencySeries: with a series window armed the pool records one
// histogram per window of virtual time; their counts must sum to the
// aggregate and merging across shards must keep that true.
func TestLatencySeries(t *testing.T) {
	p := New(testBoot(t), WithWarm(4), WithMaxInstances(16),
		WithLatencySeries(10*time.Millisecond))
	defer p.Close()
	rep, err := p.ServeParallel(NewPoisson(13, 40_000, 30_000, 256), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) == 0 {
		t.Fatal("no series windows recorded")
	}
	var total uint64
	for _, h := range rep.Series {
		total += h.Count
	}
	if total != rep.Latency.Count {
		t.Errorf("series counts sum to %d, aggregate has %d", total, rep.Latency.Count)
	}
}

// TestPoolCloseIdempotentAndServeErrors: Close twice is safe, and
// serving a closed pool reports an error instead of panicking.
func TestPoolCloseIdempotentAndServeErrors(t *testing.T) {
	p := New(testBoot(t), WithWarm(2))
	p.Close()
	p.Close()
	if _, err := p.Serve(NewPoisson(1, 10_000, 100, 256)); err == nil {
		t.Error("Serve on closed pool returned nil error")
	}
	if _, err := p.ServeParallel(NewPoisson(1, 10_000, 100, 256), 2); err == nil {
		t.Error("ServeParallel on closed pool returned nil error")
	}
}
