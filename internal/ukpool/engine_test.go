package ukpool

import (
	"reflect"
	"testing"
	"time"

	"unikraft/internal/sim"
)

// TestServeEngineIdentity is the pool-level corollary of the sim
// package's differential harness: serving the same bursty trace on the
// default wheel engine and on the heap reference engine (via
// WithEngine) must produce bit-identical ServeReports — same routing
// counts, latency quantiles, windowed series and fleet trajectory.
// Engines differ only in queue data structure, never in dispatch order.
func TestServeEngineIdentity(t *testing.T) {
	boot := testBoot(t)
	var trace []Request
	w := NewBursty(11, 20_000, 400_000, 200*time.Millisecond, 0.25, 30_000, 256)
	for {
		req, ok := w.Next()
		if !ok {
			break
		}
		trace = append(trace, req)
	}
	opts := []Option{WithWarm(4), WithMaxInstances(16),
		WithLatencySeries(100 * time.Millisecond)}

	wheelPool := New(boot, opts...)
	wheel, err := wheelPool.Serve(NewTrace(trace))
	wheelPool.Close()
	if err != nil {
		t.Fatal(err)
	}

	heapPool := New(boot, append(opts,
		WithEngine(func() sim.Loop { return sim.NewHeapLoop() }))...)
	heap, err := heapPool.Serve(NewTrace(trace))
	heapPool.Close()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(wheel, heap) {
		t.Errorf("heap-engine report diverged from wheel:\n%v\nvs\n%v", heap, wheel)
	}
}
