// Package depgraph reproduces the paper's dependency-graph analysis
// (Figures 1-3): the dense Linux kernel component graph extracted with
// cscope, versus the sparse dependency graphs of Unikraft images. It
// builds graphs from the micro-library catalog, computes the density
// metrics the paper argues from, and exports Graphviz DOT.
package depgraph

import (
	"fmt"
	"sort"
	"strings"

	"unikraft/internal/core"
)

// Edge is one weighted dependency: From calls into To `Weight` times
// (function-call references for Linux; 1 for library dependencies).
type Edge struct {
	From, To string
	Weight   int
}

// Graph is a weighted directed dependency graph.
type Graph struct {
	Name  string
	Nodes []string
	Edges []Edge
}

// NodeCount and EdgeCount report sizes.
func (g *Graph) NodeCount() int { return len(g.Nodes) }

// EdgeCount reports the number of distinct edges.
func (g *Graph) EdgeCount() int { return len(g.Edges) }

// TotalWeight sums edge weights (total cross-component references).
func (g *Graph) TotalWeight() int {
	t := 0
	for _, e := range g.Edges {
		t += e.Weight
	}
	return t
}

// Density is edges / (nodes * (nodes-1)): 1.0 for a complete digraph.
func (g *Graph) Density() float64 {
	n := len(g.Nodes)
	if n < 2 {
		return 0
	}
	return float64(len(g.Edges)) / float64(n*(n-1))
}

// AvgDegree is the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if len(g.Nodes) == 0 {
		return 0
	}
	return float64(len(g.Edges)) / float64(len(g.Nodes))
}

// DOT renders the graph in Graphviz format with weight labels, as in
// the paper's figures.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	for _, e := range g.Edges {
		if e.Weight > 1 {
			fmt.Fprintf(&b, "  %q -> %q [label=%d];\n", e.From, e.To, e.Weight)
		} else {
			fmt.Fprintf(&b, "  %q -> %q;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// LinuxKernelGraph returns the Figure 1 dataset: cross-component
// function-call dependencies between the main Linux kernel subsystems,
// extracted by the paper with cscope over the source tree. The figure's
// published edge annotations are encoded here; where the figure's
// rendering is ambiguous the weight is a conservative reading — the
// analysis (density, degree) depends on the graph's shape, not on any
// single label.
func LinuxKernelGraph() *Graph {
	nodes := []string{"fs", "mm", "net", "sched", "block", "ipc", "security", "locking", "irq", "time"}
	type w struct {
		from, to string
		n        int
	}
	edges := []w{
		{"fs", "time", 90}, {"fs", "mm", 277}, {"fs", "sched", 111}, {"fs", "net", 311},
		{"fs", "block", 95}, {"fs", "locking", 13}, {"fs", "security", 14}, {"fs", "irq", 23},
		{"fs", "ipc", 3},
		{"mm", "fs", 77}, {"mm", "sched", 37}, {"mm", "time", 151}, {"mm", "block", 110},
		{"mm", "locking", 4}, {"mm", "irq", 2}, {"mm", "security", 1},
		{"net", "fs", 213}, {"net", "mm", 15}, {"net", "sched", 53}, {"net", "time", 2},
		{"net", "security", 28}, {"net", "locking", 6}, {"net", "irq", 22},
		{"sched", "mm", 207}, {"sched", "time", 101}, {"sched", "locking", 36}, {"sched", "irq", 16},
		{"sched", "fs", 8}, {"sched", "net", 2},
		{"block", "mm", 91}, {"block", "fs", 551}, {"block", "sched", 107}, {"block", "time", 465},
		{"block", "irq", 60}, {"block", "locking", 11}, {"block", "ipc", 5},
		{"ipc", "fs", 7}, {"ipc", "mm", 27}, {"ipc", "sched", 720}, {"ipc", "security", 68},
		{"ipc", "time", 46}, {"ipc", "locking", 36}, {"ipc", "irq", 25},
		{"security", "fs", 2}, {"security", "mm", 10}, {"security", "sched", 164}, {"security", "net", 24},
		{"security", "time", 30}, {"security", "locking", 117},
		{"locking", "sched", 8}, {"locking", "time", 7}, {"locking", "irq", 119},
		{"irq", "sched", 226}, {"irq", "time", 3}, {"irq", "locking", 122}, {"irq", "mm", 19},
		{"time", "sched", 124}, {"time", "irq", 6}, {"time", "locking", 4}, {"time", "mm", 10},
		{"time", "fs", 17},
	}
	g := &Graph{Name: "linux", Nodes: nodes}
	for _, e := range edges {
		g.Edges = append(g.Edges, Edge{From: e.from, To: e.to, Weight: e.n})
	}
	return g
}

// FromClosure builds the dependency graph of one Unikraft image
// (Figures 2, 3): nodes are the linked micro-libraries, edges their
// declared dependencies and API-provider bindings.
func FromClosure(name string, closure []*core.Library, providers map[string]string) *Graph {
	inImage := map[string]bool{}
	for _, l := range closure {
		inImage[l.Name] = true
	}
	g := &Graph{Name: name}
	for _, l := range closure {
		g.Nodes = append(g.Nodes, l.Name)
		for _, d := range l.Deps {
			if inImage[d] {
				g.Edges = append(g.Edges, Edge{From: l.Name, To: d, Weight: 1})
			}
		}
		for _, api := range l.Needs {
			if p, ok := providers[api]; ok && inImage[p] {
				g.Edges = append(g.Edges, Edge{From: l.Name, To: p, Weight: 1})
			}
		}
	}
	sort.Strings(g.Nodes)
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].From != g.Edges[j].From {
			return g.Edges[i].From < g.Edges[j].From
		}
		return g.Edges[i].To < g.Edges[j].To
	})
	return g
}

// Compare summarizes the paper's Figure 1-vs-2/3 argument numerically.
type Compare struct {
	Linux, Image *Graph
	// DensityRatio is Linux density / image density (>1 means Linux is
	// denser, i.e. harder to modify).
	DensityRatio float64
	// WeightPerNode compares cross-component references per component.
	LinuxWeightPerNode, ImageWeightPerNode float64
}

// Analyze computes the comparison.
func Analyze(linux, image *Graph) Compare {
	c := Compare{Linux: linux, Image: image}
	if d := image.Density(); d > 0 {
		c.DensityRatio = linux.Density() / d
	}
	if n := linux.NodeCount(); n > 0 {
		c.LinuxWeightPerNode = float64(linux.TotalWeight()) / float64(n)
	}
	if n := image.NodeCount(); n > 0 {
		c.ImageWeightPerNode = float64(image.TotalWeight()) / float64(n)
	}
	return c
}
