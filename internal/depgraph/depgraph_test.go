package depgraph

import (
	"strings"
	"testing"

	"unikraft/internal/core"
)

func imageGraph(t *testing.T, appName string) *Graph {
	t.Helper()
	cat := core.DefaultCatalog()
	app, ok := core.AppByName(appName)
	if !ok {
		t.Fatal(appName)
	}
	providers := map[string]string{
		"libc": app.Libc, "ukalloc": app.Allocator, "plat": "plat-kvm",
	}
	if app.Scheduler != "" {
		providers["uksched"] = app.Scheduler
	}
	if app.NICs > 0 {
		providers["netstack"] = "lwip"
		providers["netdev"] = "uknetdev"
	}
	closure, err := cat.Closure([]string{app.Lib}, providers)
	if err != nil {
		t.Fatal(err)
	}
	return FromClosure(appName, closure, providers)
}

// TestFig1LinuxDataset sanity-checks the encoded Figure 1 graph.
func TestFig1LinuxDataset(t *testing.T) {
	g := LinuxKernelGraph()
	if g.NodeCount() != 10 {
		t.Fatalf("nodes = %d", g.NodeCount())
	}
	if g.EdgeCount() < 50 {
		t.Fatalf("edges = %d, want the dense Fig 1 graph", g.EdgeCount())
	}
	// Figure 1's headline annotations.
	want := map[[2]string]int{
		{"fs", "mm"}:      277,
		{"fs", "net"}:     311,
		{"block", "fs"}:   551,
		{"ipc", "sched"}:  720,
		{"block", "time"}: 465,
	}
	for _, e := range g.Edges {
		if w, ok := want[[2]string{e.From, e.To}]; ok && e.Weight != w {
			t.Errorf("%s->%s weight = %d, want %d", e.From, e.To, e.Weight, w)
		}
	}
	if g.Density() < 0.5 {
		t.Errorf("Linux graph density = %.2f; the paper's point is that it is dense", g.Density())
	}
}

// TestFig2NginxGraphSparse: the nginx Unikraft image graph is far
// sparser than the Linux component graph.
func TestFig2NginxGraphSparse(t *testing.T) {
	nginx := imageGraph(t, "nginx")
	linux := LinuxKernelGraph()
	if nginx.NodeCount() < 10 {
		t.Fatalf("nginx image graph only %d nodes", nginx.NodeCount())
	}
	cmp := Analyze(linux, nginx)
	if cmp.DensityRatio < 3 {
		t.Errorf("density ratio = %.1f; Linux should be several times denser", cmp.DensityRatio)
	}
	if cmp.ImageWeightPerNode >= cmp.LinuxWeightPerNode/10 {
		t.Errorf("weight/node: image %.1f vs linux %.1f; expected >10x gap",
			cmp.ImageWeightPerNode, cmp.LinuxWeightPerNode)
	}
}

// TestFig3HelloGraphTiny: helloworld's graph matches the paper's
// minimal set (boot, argparse, nolibc, alloc, platform, app).
func TestFig3HelloGraphTiny(t *testing.T) {
	hello := imageGraph(t, "helloworld")
	if hello.NodeCount() > 8 {
		t.Errorf("hello graph has %d nodes: %v", hello.NodeCount(), hello.Nodes)
	}
	wantNodes := []string{"app-helloworld", "nolibc", "ukboot", "ukargparse", "ukalloc", "ukallocbuddy", "plat-kvm"}
	have := map[string]bool{}
	for _, n := range hello.Nodes {
		have[n] = true
	}
	for _, n := range wantNodes {
		if !have[n] {
			t.Errorf("hello graph missing %s (have %v)", n, hello.Nodes)
		}
	}
}

func TestDOTExport(t *testing.T) {
	g := imageGraph(t, "helloworld")
	dot := g.DOT()
	if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "ukboot") {
		t.Errorf("DOT output malformed:\n%s", dot)
	}
	if !strings.Contains(LinuxKernelGraph().DOT(), "label=277") {
		t.Error("Linux DOT lacks weight labels")
	}
}

func TestGraphMetrics(t *testing.T) {
	g := &Graph{Name: "t", Nodes: []string{"a", "b", "c"}}
	g.Edges = []Edge{{From: "a", To: "b", Weight: 5}, {From: "b", To: "c", Weight: 1}}
	if g.EdgeCount() != 2 || g.TotalWeight() != 6 {
		t.Fatalf("edges=%d weight=%d", g.EdgeCount(), g.TotalWeight())
	}
	if d := g.Density(); d != 2.0/6.0 {
		t.Fatalf("density = %f", d)
	}
	if ad := g.AvgDegree(); ad != 2.0/3.0 {
		t.Fatalf("avg degree = %f", ad)
	}
}
