package ramfs

import (
	"bytes"
	"testing"

	"unikraft/internal/vfscore"
)

func TestTreeOperations(t *testing.T) {
	fs := New()
	root := fs.Root()
	dir, err := root.Create("etc", true)
	if err != nil {
		t.Fatal(err)
	}
	f, err := dir.Create("conf", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	if fs.Used() != 3 {
		t.Fatalf("Used = %d", fs.Used())
	}
	got, err := root.Lookup("etc")
	if err != nil || !got.IsDir() {
		t.Fatal(err)
	}
	if _, err := dir.Create("conf", false); err != vfscore.ErrExist {
		t.Fatalf("dup create = %v", err)
	}
	if err := root.Remove("etc"); err != vfscore.ErrNotEmpty {
		t.Fatalf("remove non-empty = %v", err)
	}
	if err := dir.Remove("conf"); err != nil {
		t.Fatal(err)
	}
	if fs.Used() != 0 {
		t.Fatalf("Used after remove = %d", fs.Used())
	}
}

func TestSparseWrites(t *testing.T) {
	fs := New()
	f, _ := fs.Root().Create("f", false)
	if _, err := f.WriteAt([]byte("end"), 100); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 103 {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, 103)
	n, _ := f.ReadAt(buf, 0)
	if n != 103 || !bytes.Equal(buf[100:], []byte("end")) {
		t.Fatalf("sparse read %d bytes", n)
	}
	for _, b := range buf[:100] {
		if b != 0 {
			t.Fatal("hole not zeroed")
		}
	}
}

func TestQuota(t *testing.T) {
	fs := New()
	fs.MaxBytes = 100
	f, _ := fs.Root().Create("f", false)
	if _, err := f.WriteAt(make([]byte, 80), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 80), 80); err != vfscore.ErrNoSpace {
		t.Fatalf("over-quota write = %v", err)
	}
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 80), 10); err != nil {
		t.Fatalf("write after truncate: %v", err)
	}
}

func TestTruncate(t *testing.T) {
	fs := New()
	f, _ := fs.Root().Create("f", false)
	f.WriteAt([]byte("0123456789"), 0)
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := f.ReadAt(buf, 0)
	if string(buf[:n]) != "0123" {
		t.Fatalf("after shrink: %q", buf[:n])
	}
	if err := f.Truncate(8); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 8 {
		t.Fatalf("size = %d", f.Size())
	}
	if err := f.Truncate(-1); err != vfscore.ErrInvalid {
		t.Fatalf("negative truncate = %v", err)
	}
}
