// Package ramfs is the in-memory filesystem Unikraft guests include when
// they do not need persistent storage (§5.2: "Typically, Unikraft guests
// include a RAM filesystem"). It implements the vfscore FS/Node
// interfaces with a plain directory tree; it also serves as the backing
// export for the in-process 9pfs host server and as the template tree
// snapshot-forked clones share through vfscore's CowFS.
//
// The only cost ramfs itself contributes is its per-component lookup
// (a map probe, charged by the vfscore path walk via LookupCost); node
// reads and writes are priced by the VFS's per-byte copy charges, and
// ReadSlice exposes zero-copy views so the page cache can share file
// bytes without any copy at all.
package ramfs

import (
	"sort"

	"unikraft/internal/vfscore"
)

// lookupCost is ramfs's per-component directory lookup (a map probe).
const lookupCost = 140

// FS is an in-memory filesystem.
type FS struct {
	root *node
	// MaxBytes bounds total file content (0 = unlimited); writes beyond
	// it return ErrNoSpace, exercising error paths in tests.
	MaxBytes int64
	used     int64
}

// New creates an empty ramfs.
func New() *FS {
	fs := &FS{}
	fs.root = &node{fs: fs, dir: true, children: map[string]*node{}}
	return fs
}

// FSName implements vfscore.FS.
func (fs *FS) FSName() string { return "ramfs" }

// Root implements vfscore.FS.
func (fs *FS) Root() vfscore.Node { return fs.root }

// LookupCost implements vfscore.FS.
func (fs *FS) LookupCost() uint64 { return lookupCost }

// Used reports total content bytes stored.
func (fs *FS) Used() int64 { return fs.used }

// node is a ramfs inode.
type node struct {
	fs       *FS
	dir      bool
	data     []byte
	children map[string]*node
}

// IsDir implements vfscore.Node.
func (n *node) IsDir() bool { return n.dir }

// Size implements vfscore.Node.
func (n *node) Size() int64 {
	if n.dir {
		return int64(len(n.children))
	}
	return int64(len(n.data))
}

// Lookup implements vfscore.Node.
func (n *node) Lookup(name string) (vfscore.Node, error) {
	if !n.dir {
		return nil, vfscore.ErrNotDir
	}
	child, ok := n.children[name]
	if !ok {
		return nil, vfscore.ErrNotExist
	}
	return child, nil
}

// Create implements vfscore.Node.
func (n *node) Create(name string, dir bool) (vfscore.Node, error) {
	if !n.dir {
		return nil, vfscore.ErrNotDir
	}
	if name == "" {
		return nil, vfscore.ErrInvalid
	}
	if _, exists := n.children[name]; exists {
		return nil, vfscore.ErrExist
	}
	child := &node{fs: n.fs, dir: dir}
	if dir {
		child.children = map[string]*node{}
	}
	n.children[name] = child
	return child, nil
}

// Remove implements vfscore.Node.
func (n *node) Remove(name string) error {
	if !n.dir {
		return vfscore.ErrNotDir
	}
	child, ok := n.children[name]
	if !ok {
		return vfscore.ErrNotExist
	}
	if child.dir && len(child.children) > 0 {
		return vfscore.ErrNotEmpty
	}
	n.fs.used -= int64(len(child.data))
	delete(n.children, name)
	return nil
}

// ReadDir implements vfscore.Node.
func (n *node) ReadDir() ([]vfscore.DirEnt, error) {
	if !n.dir {
		return nil, vfscore.ErrNotDir
	}
	out := make([]vfscore.DirEnt, 0, len(n.children))
	for name, child := range n.children {
		out = append(out, vfscore.DirEnt{Name: name, IsDir: child.dir})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ReadSlice implements vfscore.SliceReader: a zero-copy view of the
// file's bytes, valid until the next write (the VFS page cache
// invalidates on write, so a cached view can never dangle). This is
// what lets the sendfile path — and every snapshot-forked clone reading
// through a CowFS over this tree — serve content without duplicating
// it.
func (n *node) ReadSlice(off int64, ln int) ([]byte, bool) {
	if n.dir || off < 0 || off >= int64(len(n.data)) {
		return nil, false
	}
	end := off + int64(ln)
	if end > int64(len(n.data)) {
		end = int64(len(n.data))
	}
	return n.data[off:end], true
}

// ReadAt implements vfscore.Node.
func (n *node) ReadAt(p []byte, off int64) (int, error) {
	if n.dir {
		return 0, vfscore.ErrIsDir
	}
	if off < 0 {
		return 0, vfscore.ErrInvalid
	}
	if off >= int64(len(n.data)) {
		return 0, nil // EOF convention: 0 bytes, nil error
	}
	return copy(p, n.data[off:]), nil
}

// WriteAt implements vfscore.Node.
func (n *node) WriteAt(p []byte, off int64) (int, error) {
	if n.dir {
		return 0, vfscore.ErrIsDir
	}
	if off < 0 {
		return 0, vfscore.ErrInvalid
	}
	end := off + int64(len(p))
	grow := end - int64(len(n.data))
	if grow > 0 {
		if n.fs.MaxBytes > 0 && n.fs.used+grow > n.fs.MaxBytes {
			return 0, vfscore.ErrNoSpace
		}
		n.data = append(n.data, make([]byte, grow)...)
		n.fs.used += grow
	}
	copy(n.data[off:end], p)
	return len(p), nil
}

// Truncate implements vfscore.Node.
func (n *node) Truncate(size int64) error {
	if n.dir {
		return vfscore.ErrIsDir
	}
	if size < 0 {
		return vfscore.ErrInvalid
	}
	cur := int64(len(n.data))
	switch {
	case size < cur:
		n.fs.used -= cur - size
		n.data = n.data[:size]
	case size > cur:
		if n.fs.MaxBytes > 0 && n.fs.used+size-cur > n.fs.MaxBytes {
			return vfscore.ErrNoSpace
		}
		n.fs.used += size - cur
		n.data = append(n.data, make([]byte, size-cur)...)
	}
	return nil
}
