package ninepfs

import (
	"errors"
	"fmt"
	"strings"

	"unikraft/internal/sim"
	"unikraft/internal/vfscore"
)

// Transport carries 9P messages between guest client and host server,
// charging the virtio-9p round-trip cost to the guest machine. Fig 20's
// latency series derive from these constants: a fixed per-RPC cost
// (request/response descriptors, host service) plus a per-byte payload
// cost (shared-ring copies).
type Transport struct {
	machine *sim.Machine
	server  *Server
	// RTTBaseCycles is charged per RPC; PerByteNum/Den per payload byte.
	RTTBaseCycles          uint64
	PerByteNum, PerByteDen uint64
	// Trace, if non-nil, observes (request, response) pairs.
	Trace func(req, resp []byte)
}

// NewTransport connects a guest machine to a host server with the
// default virtio-9p cost model (~8.3us base + ~0.33ns/B at 3.6GHz).
func NewTransport(m *sim.Machine, srv *Server) *Transport {
	return &Transport{
		machine:       m,
		server:        srv,
		RTTBaseCycles: 30_000,
		PerByteNum:    6, PerByteDen: 5,
	}
}

// RPC executes one request/response exchange.
func (t *Transport) RPC(req []byte) []byte {
	resp := t.server.Handle(req)
	cost := t.RTTBaseCycles + uint64(len(req)+len(resp))*t.PerByteNum/t.PerByteDen
	t.machine.Charge(cost)
	if t.Trace != nil {
		t.Trace(req, resp)
	}
	return resp
}

// Client errors.
var (
	ErrProtocol = errors.New("ninepfs: protocol error")
)

// lookupCost is the guest-side per-component cost before the RPC
// (building the Twalk, fid management).
const clientLookupCost = 120

// FS is the guest-side 9pfs client, a vfscore.FS whose nodes proxy
// operations to the host server over the transport.
type FS struct {
	t       *Transport
	msize   uint32
	nextFid uint32
	nextTag uint16
	root    *cnode
}

// Mount performs the version/attach handshake and returns the mounted
// client filesystem.
func Mount(t *Transport) (*FS, error) {
	fs := &FS{t: t, nextFid: 1}
	resp := t.RPC(NewEnc(Tversion, 0xffff).U32(DefaultMsize).Str("9P2000").Bytes())
	d, typ, _, err := ParseHeader(resp)
	if err != nil || typ != Rversion {
		return nil, fmt.Errorf("ninepfs: version: %w", errOf(d, typ, err))
	}
	fs.msize = d.U32()
	rootFid := fs.allocFid()
	resp = t.RPC(NewEnc(Tattach, fs.tag()).U32(rootFid).U32(NOFID).Str("guest").Str("/").Bytes())
	d, typ, _, err = ParseHeader(resp)
	if err != nil || typ != Rattach {
		return nil, fmt.Errorf("ninepfs: attach: %w", errOf(d, typ, err))
	}
	qid := d.Qid()
	fs.root = &cnode{fs: fs, fid: rootFid, qid: qid}
	return fs, nil
}

func errOf(d *Dec, typ byte, err error) error {
	if err != nil {
		return err
	}
	if typ == Rerror && d != nil {
		return errors.New(d.Str())
	}
	return ErrProtocol
}

func (fs *FS) allocFid() uint32 {
	fs.nextFid++
	return fs.nextFid
}

func (fs *FS) tag() uint16 {
	fs.nextTag++
	return fs.nextTag
}

// FSName implements vfscore.FS.
func (fs *FS) FSName() string { return "9pfs" }

// Root implements vfscore.FS.
func (fs *FS) Root() vfscore.Node { return fs.root }

// LookupCost implements vfscore.FS.
func (fs *FS) LookupCost() uint64 { return clientLookupCost }

// Msize reports the negotiated message size.
func (fs *FS) Msize() uint32 { return fs.msize }

// cnode is a client-side node proxy holding a server fid.
type cnode struct {
	fs   *FS
	fid  uint32
	qid  Qid
	open bool
	size int64 // cached from last stat/write
	// children is the dentry cache: one stable cnode per name, like the
	// kernel dcache. Lookups still walk the server every time (shared
	// exports stay coherent for remove/replace) but revalidate into the
	// cached node on a qid match — stable Node identity is what lets
	// the VFS page cache hit, and invalidate, across separate opens of
	// one path, and bounds fid growth (revalidated walks clunk their
	// extra fid).
	children map[string]*cnode
}

// IsDir implements vfscore.Node.
func (n *cnode) IsDir() bool { return n.qid.Type&QTDIR != 0 }

// Size implements vfscore.Node (one Tstat RPC).
func (n *cnode) Size() int64 {
	resp := n.fs.t.RPC(NewEnc(Tstat, n.fs.tag()).U32(n.fid).Bytes())
	d, typ, _, err := ParseHeader(resp)
	if err != nil || typ != Rstat {
		return n.size
	}
	_ = d.Qid()
	n.size = int64(d.U64())
	return n.size
}

// Lookup implements vfscore.Node via Twalk. Every lookup walks the
// server (so removals and replacements by other clients of the shared
// export are observed, as before the dentry cache existed), but a walk
// that lands on the same object — same qid path — revalidates the
// cached cnode and returns it, clunking the redundant fid. Stable node
// identity is what lets the VFS page cache hit, and invalidate, across
// separate opens of one path; same-object content writes by *other*
// clients remain cached until eviction, the cache=loose semantics real
// 9p clients ship.
func (n *cnode) Lookup(name string) (vfscore.Node, error) {
	newfid := n.fs.allocFid()
	resp := n.fs.t.RPC(NewEnc(Twalk, n.fs.tag()).
		U32(n.fid).U32(newfid).U16(1).Str(name).Bytes())
	d, typ, _, err := ParseHeader(resp)
	if err != nil {
		return nil, err
	}
	if typ == Rerror {
		msg := d.Str()
		if strings.Contains(msg, "no such") {
			n.evictChild(name) // removed behind our back
			return nil, vfscore.ErrNotExist
		}
		return nil, errors.New(msg)
	}
	if typ != Rwalk {
		return nil, ErrProtocol
	}
	if d.U16() != 1 {
		n.evictChild(name)
		return nil, vfscore.ErrNotExist
	}
	qid := d.Qid()
	if child, ok := n.children[name]; ok && child.qid.Path == qid.Path {
		// Same object: the cached node is current — release the walk's
		// extra fid and keep the stable identity.
		(&cnode{fs: n.fs, fid: newfid}).Clunk()
		return child, nil
	}
	n.evictChild(name) // replaced: different object behind the name now
	child := &cnode{fs: n.fs, fid: newfid, qid: qid}
	if n.children == nil {
		n.children = map[string]*cnode{}
	}
	n.children[name] = child
	return child, nil
}

// evictChild drops a dentry-cache entry whose name no longer resolves
// to the cached object, clunking its fid so server-side fid state stays
// bounded under remove/recreate churn. A descriptor still holding the
// evicted node errors on further I/O — the stale-handle semantics of a
// remotely replaced file on a shared export.
func (n *cnode) evictChild(name string) {
	if child, ok := n.children[name]; ok {
		child.Clunk()
		delete(n.children, name)
	}
}

// ensureOpen opens the fid for I/O once.
func (n *cnode) ensureOpen(mode byte) error {
	if n.open {
		return nil
	}
	resp := n.fs.t.RPC(NewEnc(Topen, n.fs.tag()).U32(n.fid).U8(mode).Bytes())
	d, typ, _, err := ParseHeader(resp)
	if err != nil {
		return err
	}
	if typ != Ropen {
		return errOf(d, typ, nil)
	}
	n.open = true
	return nil
}

// Create implements vfscore.Node via Tcreate on a walked copy of this
// directory's fid (Tcreate mutates the fid it is given).
func (n *cnode) Create(name string, dir bool) (vfscore.Node, error) {
	// Clone our fid so the directory fid survives.
	cfid := n.fs.allocFid()
	resp := n.fs.t.RPC(NewEnc(Twalk, n.fs.tag()).U32(n.fid).U32(cfid).U16(0).Bytes())
	if _, typ, _, err := ParseHeader(resp); err != nil || typ != Rwalk {
		return nil, ErrProtocol
	}
	var perm uint32
	if dir {
		perm |= 0x80000000 // DMDIR
	}
	resp = n.fs.t.RPC(NewEnc(Tcreate, n.fs.tag()).U32(cfid).Str(name).U32(perm).U8(ORDWR).Bytes())
	d, typ, _, err := ParseHeader(resp)
	if err != nil {
		return nil, err
	}
	if typ == Rerror {
		msg := d.Str()
		if strings.Contains(msg, "exists") {
			return nil, vfscore.ErrExist
		}
		return nil, errors.New(msg)
	}
	if typ != Rcreate {
		return nil, ErrProtocol
	}
	child := &cnode{fs: n.fs, fid: cfid, qid: d.Qid(), open: true}
	if n.children == nil {
		n.children = map[string]*cnode{}
	}
	n.children[name] = child
	return child, nil
}

// Remove implements vfscore.Node: the extended Tremove carries the
// child name (see server.go).
func (n *cnode) Remove(name string) error {
	resp := n.fs.t.RPC(NewEnc(Tremove, n.fs.tag()).U32(n.fid).Str(name).Bytes())
	d, typ, _, err := ParseHeader(resp)
	if err != nil {
		return err
	}
	if typ == Rerror {
		msg := d.Str()
		switch {
		case strings.Contains(msg, "no such"):
			return vfscore.ErrNotExist
		case strings.Contains(msg, "not empty"):
			return vfscore.ErrNotEmpty
		}
		return errors.New(msg)
	}
	if typ != Rremove {
		return ErrProtocol
	}
	// Clunk the cached child's fid too: the server removes the object
	// via the parent fid, so the child's own fid would otherwise stay
	// registered forever.
	n.evictChild(name)
	return nil
}

// ReadDir implements vfscore.Node by paging Tread records.
func (n *cnode) ReadDir() ([]vfscore.DirEnt, error) {
	if !n.IsDir() {
		return nil, vfscore.ErrNotDir
	}
	if err := n.ensureOpen(OREAD); err != nil {
		return nil, err
	}
	var out []vfscore.DirEnt
	off := uint64(0)
	for {
		resp := n.fs.t.RPC(NewEnc(Tread, n.fs.tag()).
			U32(n.fid).U64(off).U32(n.fs.msize - 24).Bytes())
		d, typ, _, err := ParseHeader(resp)
		if err != nil || typ != Rread {
			return nil, errOf(d, typ, err)
		}
		payload := d.Blob()
		if len(payload) == 0 {
			return out, nil
		}
		rd := &Dec{buf: payload, off: 0}
		count := 0
		for rd.off < len(payload) {
			q := rd.Qid()
			name := rd.Str()
			if rd.Err() != nil {
				return nil, ErrProtocol
			}
			out = append(out, vfscore.DirEnt{Name: name, IsDir: q.Type&QTDIR != 0})
			count++
		}
		off += uint64(count)
	}
}

// ReadAt implements vfscore.Node, splitting reads at msize.
func (n *cnode) ReadAt(p []byte, off int64) (int, error) {
	if err := n.ensureOpen(ORDWR); err != nil {
		return 0, err
	}
	total := 0
	for total < len(p) {
		chunk := uint32(len(p) - total)
		if max := n.fs.msize - 24; chunk > max {
			chunk = max
		}
		resp := n.fs.t.RPC(NewEnc(Tread, n.fs.tag()).
			U32(n.fid).U64(uint64(off) + uint64(total)).U32(chunk).Bytes())
		d, typ, _, err := ParseHeader(resp)
		if err != nil || typ != Rread {
			return total, errOf(d, typ, err)
		}
		data := d.Blob()
		copy(p[total:], data)
		total += len(data)
		if len(data) == 0 {
			break // EOF
		}
	}
	return total, nil
}

// WriteAt implements vfscore.Node, splitting writes at msize.
func (n *cnode) WriteAt(p []byte, off int64) (int, error) {
	if err := n.ensureOpen(ORDWR); err != nil {
		return 0, err
	}
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if max := int(n.fs.msize - 24); chunk > max {
			chunk = max
		}
		resp := n.fs.t.RPC(NewEnc(Twrite, n.fs.tag()).
			U32(n.fid).U64(uint64(off) + uint64(total)).Blob(p[total : total+chunk]).Bytes())
		d, typ, _, err := ParseHeader(resp)
		if err != nil || typ != Rwrite {
			return total, errOf(d, typ, err)
		}
		nw := int(d.U32())
		total += nw
		if nw < chunk {
			return total, vfscore.ErrNoSpace
		}
	}
	if end := off + int64(total); end > n.size {
		n.size = end
	}
	return total, nil
}

// Truncate implements vfscore.Node via re-open with OTRUNC.
func (n *cnode) Truncate(size int64) error {
	if size != 0 {
		return vfscore.ErrInvalid // only full truncation is supported remotely
	}
	n.open = false
	if err := n.ensureOpen(ORDWR | OTRUNC); err != nil {
		return err
	}
	n.size = 0
	return nil
}

// Clunk releases the node's fid on the server (descriptor hygiene for
// long-lived mounts; vfscore has no node-release hook, so callers that
// care invoke it explicitly).
func (n *cnode) Clunk() error {
	resp := n.fs.t.RPC(NewEnc(Tclunk, n.fs.tag()).U32(n.fid).Bytes())
	_, typ, _, err := ParseHeader(resp)
	if err != nil || typ != Rclunk {
		return ErrProtocol
	}
	return nil
}
