package ninepfs

import (
	"bytes"
	"testing"
	"testing/quick"

	"unikraft/internal/ramfs"
	"unikraft/internal/sim"
	"unikraft/internal/vfscore"
)

// hostFixture builds a host export with some files.
func hostFixture(t *testing.T) *ramfs.FS {
	t.Helper()
	host := ramfs.New()
	root := host.Root()
	f, err := root.Create("hello.txt", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello from the host"), 0); err != nil {
		t.Fatal(err)
	}
	dir, err := root.Create("sub", true)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := dir.Create("nested.dat", false)
	g.WriteAt(bytes.Repeat([]byte{0xAB}, 10000), 0)
	return host
}

func mountFixture(t *testing.T) (*FS, *Server, *sim.Machine) {
	t.Helper()
	host := hostFixture(t)
	srv := NewServer(host)
	m := sim.NewMachine()
	fs, err := Mount(NewTransport(m, srv))
	if err != nil {
		t.Fatal(err)
	}
	return fs, srv, m
}

func TestCodecRoundTrip(t *testing.T) {
	msg := NewEnc(Twalk, 42).U32(7).U32(8).U16(2).Str("usr").Str("lib").Bytes()
	d, typ, tag, err := ParseHeader(msg)
	if err != nil {
		t.Fatal(err)
	}
	if typ != Twalk || tag != 42 {
		t.Fatalf("typ=%d tag=%d", typ, tag)
	}
	if d.U32() != 7 || d.U32() != 8 || d.U16() != 2 {
		t.Fatal("fixed fields corrupted")
	}
	if d.Str() != "usr" || d.Str() != "lib" {
		t.Fatal("strings corrupted")
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d trailing bytes", d.Remaining())
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

// TestCodecQuick property: any (u32, u64, string, blob) tuple survives
// an encode/decode round trip.
func TestCodecQuick(t *testing.T) {
	f := func(a uint32, b uint64, s string, blob []byte) bool {
		if len(s) > 60000 || len(blob) > 60000 {
			return true
		}
		msg := NewEnc(Rread, 1).U32(a).U64(b).Str(s).Blob(blob).Bytes()
		d, typ, _, err := ParseHeader(msg)
		if err != nil || typ != Rread {
			return false
		}
		return d.U32() == a && d.U64() == b && d.Str() == s &&
			bytes.Equal(d.Blob(), blob) && d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecTruncation(t *testing.T) {
	msg := NewEnc(Tread, 1).U32(5).U64(0).U32(100).Bytes()
	for cut := 0; cut < len(msg); cut++ {
		if cut >= 7 {
			// Header parse succeeds only with a consistent size field;
			// a cut message must fail ParseHeader.
			if _, _, _, err := ParseHeader(msg[:cut]); err == nil {
				t.Fatalf("ParseHeader accepted truncated message (%d bytes)", cut)
			}
			continue
		}
		if _, _, _, err := ParseHeader(msg[:cut]); err == nil {
			t.Fatalf("short header accepted (%d bytes)", cut)
		}
	}
}

func TestMountAndRead(t *testing.T) {
	fs, _, _ := mountFixture(t)
	node, err := fs.Root().Lookup("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := node.ReadAt(buf, 0)
	if err != nil || string(buf[:n]) != "hello from the host" {
		t.Fatalf("ReadAt = %q, %v", buf[:n], err)
	}
	if node.Size() != 19 {
		t.Fatalf("Size = %d", node.Size())
	}
}

func TestWalkNested(t *testing.T) {
	fs, _, _ := mountFixture(t)
	sub, err := fs.Root().Lookup("sub")
	if err != nil {
		t.Fatal(err)
	}
	if !sub.IsDir() {
		t.Fatal("sub not a dir")
	}
	nested, err := sub.Lookup("nested.dat")
	if err != nil {
		t.Fatal(err)
	}
	if nested.Size() != 10000 {
		t.Fatalf("nested size = %d", nested.Size())
	}
	if _, err := fs.Root().Lookup("absent"); err != vfscore.ErrNotExist {
		t.Fatalf("lookup absent = %v", err)
	}
}

func TestWriteThrough9p(t *testing.T) {
	fs, _, _ := mountFixture(t)
	node, err := fs.Root().Create("new.bin", false)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("abc"), 1000)
	if n, err := node.WriteAt(payload, 0); err != nil || n != len(payload) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	// Re-walk from the root: content must be on the host.
	again, err := fs.Root().Lookup("new.bin")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	n, err := again.ReadAt(buf, 0)
	if err != nil || !bytes.Equal(buf[:n], payload) {
		t.Fatalf("read-back mismatch: %d bytes, %v", n, err)
	}
}

func TestLargeTransferSplitsAtMsize(t *testing.T) {
	fs, _, m := mountFixture(t)
	rpcs := 0
	// Count RPCs via a tracing transport wrapped around a fresh mount.
	host := hostFixture(t)
	srv := NewServer(host)
	tr := NewTransport(m, srv)
	tr.Trace = func(req, resp []byte) { rpcs++ }
	fs2, err := Mount(tr)
	if err != nil {
		t.Fatal(err)
	}
	_ = fs
	node, err := fs2.Root().Create("big", false)
	if err != nil {
		t.Fatal(err)
	}
	rpcs = 0
	payload := make([]byte, 200<<10) // 200KB > 64KB msize
	if _, err := node.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	minRPCs := (200 << 10) / int(DefaultMsize)
	if rpcs <= minRPCs {
		t.Fatalf("write RPCs = %d, want > %d (msize splitting)", rpcs, minRPCs)
	}
	buf := make([]byte, 200<<10)
	rpcs = 0
	if n, err := node.ReadAt(buf, 0); err != nil || n != len(buf) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if rpcs <= minRPCs {
		t.Fatalf("read RPCs = %d, want > %d", rpcs, minRPCs)
	}
}

func TestReadDirOver9p(t *testing.T) {
	fs, _, _ := mountFixture(t)
	ents, err := fs.Root().ReadDir()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("entries = %v", ents)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	if names[0] != "hello.txt" || names[1] != "sub" {
		t.Fatalf("names = %v", names)
	}
	if !ents[1].IsDir {
		t.Error("sub not flagged as dir")
	}
}

func TestRemoveOver9p(t *testing.T) {
	fs, _, _ := mountFixture(t)
	if err := fs.Root().Remove("hello.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Root().Lookup("hello.txt"); err != vfscore.ErrNotExist {
		t.Fatalf("lookup after remove = %v", err)
	}
	if err := fs.Root().Remove("hello.txt"); err != vfscore.ErrNotExist {
		t.Fatalf("double remove = %v", err)
	}
	// Removing a non-empty dir maps the server error.
	if err := fs.Root().Remove("sub"); err != vfscore.ErrNotEmpty {
		t.Fatalf("remove non-empty dir = %v", err)
	}
}

func TestVFSOver9pfs(t *testing.T) {
	// Full integration: the guest mounts 9pfs into vfscore and does
	// standard file I/O against the host export (the paper's §5.2
	// configuration).
	fs, _, m := mountFixture(t)
	v := vfscore.New(m)
	if err := v.Mount("/", fs); err != nil {
		t.Fatal(err)
	}
	fd, err := v.Open("/sub/nested.dat", vfscore.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := v.Read(fd, buf)
	if err != nil || n != 4096 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	for _, b := range buf {
		if b != 0xAB {
			t.Fatal("content mismatch through vfs+9p")
		}
	}
	v.Close(fd)
}

func TestTransportChargesLatency(t *testing.T) {
	fs, _, m := mountFixture(t)
	node, _ := fs.Root().Lookup("sub")
	nested, _ := node.Lookup("nested.dat")
	// Warm the open so both measured reads are single Tread RPCs.
	warm := make([]byte, 16)
	nested.ReadAt(warm, 0)
	before := m.CPU.Cycles()
	buf := make([]byte, 4096)
	nested.ReadAt(buf, 0)
	cost := m.CPU.Cycles() - before
	// ~30k base + ~5k payload cycles: must be tens of microseconds
	// territory (Fig 20), not free and not milliseconds.
	if cost < 20_000 || cost > 200_000 {
		t.Errorf("4K 9p read = %d cycles; outside Fig 20 plausibility", cost)
	}
	// Larger reads must cost more (per-byte component).
	before = m.CPU.Cycles()
	big := make([]byte, 8192)
	nested.ReadAt(big, 0)
	if got := m.CPU.Cycles() - before; got <= cost {
		t.Errorf("8K read (%d) not costlier than 4K read (%d)", got, cost)
	}
}

func TestServerFidHygiene(t *testing.T) {
	host := hostFixture(t)
	srv := NewServer(host)
	m := sim.NewMachine()
	fs, err := Mount(NewTransport(m, srv))
	if err != nil {
		t.Fatal(err)
	}
	start := srv.FidCount()
	n, err := fs.Root().Lookup("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if srv.FidCount() != start+1 {
		t.Fatalf("fids = %d, want %d", srv.FidCount(), start+1)
	}
	if err := n.(*cnode).Clunk(); err != nil {
		t.Fatal(err)
	}
	if srv.FidCount() != start {
		t.Fatalf("fids after clunk = %d, want %d", srv.FidCount(), start)
	}
}

func TestVersionNegotiation(t *testing.T) {
	srv := NewServer(ramfs.New())
	resp := srv.Handle(NewEnc(Tversion, 0xffff).U32(1 << 20).Str("9P2000").Bytes())
	d, typ, _, err := ParseHeader(resp)
	if err != nil || typ != Rversion {
		t.Fatal(err)
	}
	if got := d.U32(); got != DefaultMsize {
		t.Fatalf("msize = %d, want clamped %d", got, DefaultMsize)
	}
	// Unknown version string is answered with "unknown".
	resp = srv.Handle(NewEnc(Tversion, 1).U32(8192).Str("9P1999").Bytes())
	d, _, _, _ = ParseHeader(resp)
	d.U32()
	if v := d.Str(); v != "unknown" {
		t.Fatalf("version = %q", v)
	}
}

func TestServerErrors(t *testing.T) {
	srv := NewServer(ramfs.New())
	// Unknown fid read.
	resp := srv.Handle(NewEnc(Tread, 9).U32(777).U64(0).U32(16).Bytes())
	if _, typ, _, _ := ParseHeader(resp); typ != Rerror {
		t.Fatalf("read unknown fid: type = %d, want Rerror", typ)
	}
	// Unsupported type.
	resp = srv.Handle(NewEnc(200, 9).Bytes())
	if _, typ, _, _ := ParseHeader(resp); typ != Rerror {
		t.Fatalf("unknown type: %d, want Rerror", typ)
	}
	// Garbage framing.
	resp = srv.Handle([]byte{1, 2, 3})
	if _, typ, _, _ := ParseHeader(resp); typ != Rerror {
		t.Fatalf("garbage: %d, want Rerror", typ)
	}
}
