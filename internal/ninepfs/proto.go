// Package ninepfs implements the paper's 9pfs stack (§5.2): a 9P2000
// protocol codec, an in-process host server exporting a filesystem tree,
// and a guest-side client that implements the vfscore FS interface. The
// transport models virtio-9p message latency, calibrated so the Fig 20
// read/write latency series reproduce.
//
// The protocol subset covers version/attach/walk/open/create/read/
// write/clunk/remove/stat, with classic little-endian 9P framing
// (size[4] type[1] tag[2] ...). Directory reads return a sequence of
// (qid[13] name[s]) records — a simplification of the full stat record
// that both ends of this implementation share.
package ninepfs

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Message types (9P2000 numbering).
const (
	Tversion = 100
	Rversion = 101
	Tattach  = 104
	Rattach  = 105
	Rerror   = 107
	Twalk    = 110
	Rwalk    = 111
	Topen    = 112
	Ropen    = 113
	Tcreate  = 114
	Rcreate  = 115
	Tread    = 116
	Rread    = 117
	Twrite   = 118
	Rwrite   = 119
	Tclunk   = 120
	Rclunk   = 121
	Tremove  = 122
	Rremove  = 123
	Tstat    = 124
	Rstat    = 125
)

// Open modes.
const (
	OREAD  = 0
	OWRITE = 1
	ORDWR  = 2
	OTRUNC = 0x10
)

// Qid type bits.
const (
	QTDIR  = 0x80
	QTFILE = 0x00
)

// NOFID is the sentinel "no fid" value.
const NOFID = ^uint32(0)

// DefaultMsize is the negotiated maximum message size.
const DefaultMsize = 65536

// Qid identifies a file on the server.
type Qid struct {
	Type    byte
	Version uint32
	Path    uint64
}

var le = binary.LittleEndian

var errShort = errors.New("ninepfs: short message")

// Enc builds a 9P message.
type Enc struct{ buf []byte }

// NewEnc starts a message of the given type and tag; the size field is
// patched in Bytes.
func NewEnc(typ byte, tag uint16) *Enc {
	e := &Enc{buf: make([]byte, 0, 64)}
	e.buf = append(e.buf, 0, 0, 0, 0, typ)
	e.U16(tag)
	return e
}

// U8 appends a byte.
func (e *Enc) U8(v byte) *Enc { e.buf = append(e.buf, v); return e }

// U16 appends a 16-bit little-endian value.
func (e *Enc) U16(v uint16) *Enc {
	var b [2]byte
	le.PutUint16(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

// U32 appends a 32-bit little-endian value.
func (e *Enc) U32(v uint32) *Enc {
	var b [4]byte
	le.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

// U64 appends a 64-bit little-endian value.
func (e *Enc) U64(v uint64) *Enc {
	var b [8]byte
	le.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

// Str appends a 9P string (len[2] + bytes).
func (e *Enc) Str(s string) *Enc {
	e.U16(uint16(len(s)))
	e.buf = append(e.buf, s...)
	return e
}

// Blob appends count[4] + raw bytes.
func (e *Enc) Blob(b []byte) *Enc {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// Qid appends a qid[13].
func (e *Enc) Qid(q Qid) *Enc {
	e.U8(q.Type)
	e.U32(q.Version)
	e.U64(q.Path)
	return e
}

// Bytes finalizes the message (patches size[4]) and returns the wire
// form.
func (e *Enc) Bytes() []byte {
	le.PutUint32(e.buf[0:4], uint32(len(e.buf)))
	return e.buf
}

// Dec reads a 9P message.
type Dec struct {
	buf []byte
	off int
	err error
}

// ParseHeader validates framing and returns a decoder positioned after
// the header, plus the type and tag.
func ParseHeader(msg []byte) (*Dec, byte, uint16, error) {
	if len(msg) < 7 {
		return nil, 0, 0, errShort
	}
	size := le.Uint32(msg[0:4])
	if int(size) != len(msg) {
		return nil, 0, 0, fmt.Errorf("ninepfs: size field %d != buffer %d", size, len(msg))
	}
	typ := msg[4]
	tag := le.Uint16(msg[5:7])
	return &Dec{buf: msg, off: 7}, typ, tag, nil
}

// Err reports the first decoding error.
func (d *Dec) Err() error { return d.err }

func (d *Dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = errShort
		return false
	}
	return true
}

// U8 reads a byte.
func (d *Dec) U8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U16 reads a 16-bit value.
func (d *Dec) U16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := le.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

// U32 reads a 32-bit value.
func (d *Dec) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := le.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a 64-bit value.
func (d *Dec) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := le.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Str reads a 9P string.
func (d *Dec) Str() string {
	n := int(d.U16())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Blob reads count[4]+bytes.
func (d *Dec) Blob() []byte {
	n := int(d.U32())
	if !d.need(n) {
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Qid reads a qid[13].
func (d *Dec) Qid() Qid {
	return Qid{Type: d.U8(), Version: d.U32(), Path: d.U64()}
}

// Remaining reports undecoded bytes (tests).
func (d *Dec) Remaining() int { return len(d.buf) - d.off }
