package ninepfs

import (
	"fmt"

	"unikraft/internal/vfscore"
)

// Server is the host-side 9P file server exporting a filesystem tree
// (the paper's setup: "the 9pfs filesystem resides in the host", §5.2).
// It is transport-agnostic: Handle takes one T-message and returns one
// R-message.
type Server struct {
	export vfscore.FS
	fids   map[uint32]*srvFid
	msize  uint32
	qidSeq uint64
	qids   map[vfscore.Node]uint64
}

type srvFid struct {
	node vfscore.Node
	open bool
}

// NewServer exports fs.
func NewServer(fs vfscore.FS) *Server {
	return &Server{
		export: fs,
		fids:   map[uint32]*srvFid{},
		msize:  DefaultMsize,
		qids:   map[vfscore.Node]uint64{},
	}
}

func (s *Server) qidFor(n vfscore.Node) Qid {
	path, ok := s.qids[n]
	if !ok {
		s.qidSeq++
		path = s.qidSeq
		s.qids[n] = path
	}
	t := byte(QTFILE)
	if n.IsDir() {
		t = QTDIR
	}
	return Qid{Type: t, Path: path}
}

func rerror(tag uint16, msg string) []byte {
	return NewEnc(Rerror, tag).Str(msg).Bytes()
}

// Handle processes one request message and returns the response.
func (s *Server) Handle(req []byte) []byte {
	d, typ, tag, err := ParseHeader(req)
	if err != nil {
		return rerror(0xffff, err.Error())
	}
	switch typ {
	case Tversion:
		msize := d.U32()
		ver := d.Str()
		if d.Err() != nil {
			return rerror(tag, d.Err().Error())
		}
		if msize < 4096 {
			msize = 4096
		}
		if msize > DefaultMsize {
			msize = DefaultMsize
		}
		s.msize = msize
		if ver != "9P2000" {
			ver = "unknown"
		}
		return NewEnc(Rversion, tag).U32(msize).Str(ver).Bytes()

	case Tattach:
		fid := d.U32()
		_ = d.U32() // afid: no auth
		_ = d.Str() // uname
		_ = d.Str() // aname
		if d.Err() != nil {
			return rerror(tag, d.Err().Error())
		}
		if _, dup := s.fids[fid]; dup {
			return rerror(tag, "fid in use")
		}
		root := s.export.Root()
		s.fids[fid] = &srvFid{node: root}
		return NewEnc(Rattach, tag).Qid(s.qidFor(root)).Bytes()

	case Twalk:
		fid := d.U32()
		newfid := d.U32()
		n := int(d.U16())
		names := make([]string, 0, n)
		for i := 0; i < n; i++ {
			names = append(names, d.Str())
		}
		if d.Err() != nil {
			return rerror(tag, d.Err().Error())
		}
		f, ok := s.fids[fid]
		if !ok {
			return rerror(tag, "unknown fid")
		}
		if newfid != fid {
			if _, dup := s.fids[newfid]; dup {
				return rerror(tag, "newfid in use")
			}
		}
		node := f.node
		resp := NewEnc(Rwalk, tag)
		qids := make([]Qid, 0, n)
		for _, name := range names {
			next, err := node.Lookup(name)
			if err != nil {
				// Partial walks return the qids matched so far; a
				// zero-element walk of a missing first component is an
				// error (9P semantics).
				if len(qids) == 0 {
					return rerror(tag, err.Error())
				}
				break
			}
			node = next
			qids = append(qids, s.qidFor(node))
		}
		if len(qids) == n {
			s.fids[newfid] = &srvFid{node: node}
		}
		resp.U16(uint16(len(qids)))
		for _, q := range qids {
			resp.Qid(q)
		}
		return resp.Bytes()

	case Topen:
		fid := d.U32()
		mode := d.U8()
		if d.Err() != nil {
			return rerror(tag, d.Err().Error())
		}
		f, ok := s.fids[fid]
		if !ok {
			return rerror(tag, "unknown fid")
		}
		if mode&OTRUNC != 0 && !f.node.IsDir() {
			if err := f.node.Truncate(0); err != nil {
				return rerror(tag, err.Error())
			}
		}
		f.open = true
		return NewEnc(Ropen, tag).Qid(s.qidFor(f.node)).U32(s.msize - 24).Bytes()

	case Tcreate:
		fid := d.U32()
		name := d.Str()
		perm := d.U32()
		_ = d.U8() // mode
		if d.Err() != nil {
			return rerror(tag, d.Err().Error())
		}
		f, ok := s.fids[fid]
		if !ok {
			return rerror(tag, "unknown fid")
		}
		isDir := perm&0x80000000 != 0 // DMDIR
		child, err := f.node.Create(name, isDir)
		if err != nil {
			return rerror(tag, err.Error())
		}
		f.node = child // fid now refers to the new file (9P semantics)
		f.open = true
		return NewEnc(Rcreate, tag).Qid(s.qidFor(child)).U32(s.msize - 24).Bytes()

	case Tread:
		fid := d.U32()
		off := d.U64()
		count := d.U32()
		if d.Err() != nil {
			return rerror(tag, d.Err().Error())
		}
		f, ok := s.fids[fid]
		if !ok {
			return rerror(tag, "unknown fid")
		}
		if !f.open {
			return rerror(tag, "fid not open")
		}
		if count > s.msize-24 {
			count = s.msize - 24
		}
		if f.node.IsDir() {
			return s.readDir(tag, f, off, count)
		}
		buf := make([]byte, count)
		n, err := f.node.ReadAt(buf, int64(off))
		if err != nil {
			return rerror(tag, err.Error())
		}
		return NewEnc(Rread, tag).Blob(buf[:n]).Bytes()

	case Twrite:
		fid := d.U32()
		off := d.U64()
		data := d.Blob()
		if d.Err() != nil {
			return rerror(tag, d.Err().Error())
		}
		f, ok := s.fids[fid]
		if !ok {
			return rerror(tag, "unknown fid")
		}
		if !f.open {
			return rerror(tag, "fid not open")
		}
		n, err := f.node.WriteAt(data, int64(off))
		if err != nil {
			return rerror(tag, err.Error())
		}
		return NewEnc(Rwrite, tag).U32(uint32(n)).Bytes()

	case Tclunk:
		fid := d.U32()
		if _, ok := s.fids[fid]; !ok {
			return rerror(tag, "unknown fid")
		}
		delete(s.fids, fid)
		return NewEnc(Rclunk, tag).Bytes()

	case Tremove:
		// Tremove removes the file the fid refers to and clunks it. Our
		// Node interface removes by (parent, name), so the client sends
		// the parent fid plus the name as an extension field.
		fid := d.U32()
		name := d.Str()
		if d.Err() != nil {
			return rerror(tag, d.Err().Error())
		}
		f, ok := s.fids[fid]
		if !ok {
			return rerror(tag, "unknown fid")
		}
		if err := f.node.Remove(name); err != nil {
			return rerror(tag, err.Error())
		}
		return NewEnc(Rremove, tag).Bytes()

	case Tstat:
		fid := d.U32()
		f, ok := s.fids[fid]
		if !ok {
			return rerror(tag, "unknown fid")
		}
		// Minimal stat: qid[13] length[8].
		return NewEnc(Rstat, tag).Qid(s.qidFor(f.node)).U64(uint64(f.node.Size())).Bytes()
	}
	return rerror(tag, fmt.Sprintf("unsupported message type %d", typ))
}

// readDir encodes directory entries as repeated (qid[13] name[s])
// records starting at entry index off.
func (s *Server) readDir(tag uint16, f *srvFid, off uint64, count uint32) []byte {
	ents, err := f.node.ReadDir()
	if err != nil {
		return rerror(tag, err.Error())
	}
	inner := NewEnc(Rread, tag)
	var payload []byte
	for i := int(off); i < len(ents); i++ {
		rec := make([]byte, 0, 16+len(ents[i].Name))
		t := byte(QTFILE)
		if ents[i].IsDir {
			t = QTDIR
		}
		rec = append(rec, t)
		rec = append(rec, 0, 0, 0, 0)             // qid version
		rec = append(rec, 0, 0, 0, 0, 0, 0, 0, 0) // qid path (unused in listing)
		rec = append(rec, byte(len(ents[i].Name)), byte(len(ents[i].Name)>>8))
		rec = append(rec, ents[i].Name...)
		if uint32(len(payload)+len(rec)) > count {
			break
		}
		payload = append(payload, rec...)
	}
	return inner.Blob(payload).Bytes()
}

// FidCount reports live fids (tests: clunk hygiene).
func (s *Server) FidCount() int { return len(s.fids) }
