package ukalloc

import (
	"fmt"
	"sort"
)

// providerBackends maps catalog provider library names (the Kconfig-level
// micro-library identifiers in internal/core's catalog) to the backend
// names registered with RegisterBackend. It is the single source of truth
// for the catalog-provider -> allocator-backend correspondence; the build
// pipeline, the boot pipeline and the experiment harness all resolve
// through it.
var providerBackends = map[string]string{
	"ukallocbuddy": "buddy",
	"ukalloctlsf":  "tlsf",
	"ukalloctiny":  "tinyalloc",
	"ukallocmim":   "mimalloc",
	"ukallocboot":  "bootalloc",
}

// BackendForProvider maps a catalog ukalloc provider ("ukalloctlsf") to
// its backend name ("tlsf").
func BackendForProvider(provider string) (string, bool) {
	b, ok := providerBackends[provider]
	return b, ok
}

// ProviderForBackend maps a backend name ("tlsf") back to its catalog
// provider library ("ukalloctlsf"). Backends registered at run time
// without a catalog library have no provider.
func ProviderForBackend(backend string) (string, bool) {
	for p, b := range providerBackends {
		if b == backend {
			return p, true
		}
	}
	return "", false
}

// ProviderNames lists the catalog provider libraries, sorted.
func ProviderNames() []string {
	names := make([]string, 0, len(providerBackends))
	for p := range providerBackends {
		names = append(names, p)
	}
	sort.Strings(names)
	return names
}

// ResolveBackend accepts either a backend name ("tlsf") or a catalog
// provider name ("ukalloctlsf") and returns the backend name, erroring
// with the full set of valid choices otherwise.
func ResolveBackend(name string) (string, error) {
	if b, ok := providerBackends[name]; ok {
		return b, nil
	}
	if _, ok := factories[name]; ok {
		return name, nil
	}
	return "", fmt.Errorf("ukalloc: unknown allocator %q (backends %v, providers %v)",
		name, BackendNames(), ProviderNames())
}

// NewInitialized constructs a backend by name (backend or catalog
// provider) and initializes it over a fresh heap of heapBytes. It is the
// shared "make me a working allocator" path used by the boot pipeline,
// the experiment harness and library users.
func NewInitialized(name string, sink CostSink, heapBytes int) (Allocator, error) {
	backend, err := ResolveBackend(name)
	if err != nil {
		return nil, err
	}
	a, err := NewBackend(backend, sink)
	if err != nil {
		return nil, err
	}
	if err := a.Init(make([]byte, heapBytes)); err != nil {
		return nil, fmt.Errorf("ukalloc: init %s over %d-byte heap: %w", backend, heapBytes, err)
	}
	return a, nil
}
