package ukalloc

import (
	"fmt"
	"sort"
)

// Factory constructs an uninitialized allocator backend. The sink may be
// nil; backends must then skip cost accounting.
type Factory func(sink CostSink) Allocator

var factories = map[string]Factory{}

// RegisterBackend makes a backend constructor available by name. It is
// called from backend package init functions, mirroring how Unikraft
// micro-libraries register with the ukalloc interface at link time. It
// panics on duplicate names, which would indicate a build-system bug.
func RegisterBackend(name string, f Factory) {
	if _, dup := factories[name]; dup {
		panic("ukalloc: duplicate backend " + name)
	}
	factories[name] = f
}

// NewBackend constructs a registered backend by name.
func NewBackend(name string, sink CostSink) (Allocator, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("ukalloc: unknown backend %q (have %v)", name, BackendNames())
	}
	return f(sink), nil
}

// BackendNames lists registered backends in sorted order.
func BackendNames() []string {
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Registry is the per-unikernel multiplexing facility from §3.2: several
// initialized allocators can coexist in one image, each with its own
// region, and one of them is the default that backs malloc()-level
// requests from the libc layer.
type Registry struct {
	allocs []Allocator
	def    Allocator
}

// Register adds an initialized allocator to the registry. The first
// registered allocator becomes the default, as in Unikraft's boot
// sequence where the early allocator registers first.
func (r *Registry) Register(a Allocator) {
	r.allocs = append(r.allocs, a)
	if r.def == nil {
		r.def = a
	}
}

// SetDefault makes a previously registered allocator the default. It
// returns false if a was never registered.
func (r *Registry) SetDefault(a Allocator) bool {
	for _, x := range r.allocs {
		if x == a {
			r.def = a
			return true
		}
	}
	return false
}

// Default returns the default allocator, or nil before any registration
// (allocations before allocator init are a boot bug, and callers treat
// nil as such).
func (r *Registry) Default() Allocator { return r.def }

// All returns the registered allocators in registration order.
func (r *Registry) All() []Allocator { return r.allocs }

// ByName returns the first registered allocator with the given backend
// name, or nil.
func (r *Registry) ByName(name string) Allocator {
	for _, a := range r.allocs {
		if a.Name() == name {
			return a
		}
	}
	return nil
}
