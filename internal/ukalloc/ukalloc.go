// Package ukalloc is the memory-allocation API of the Unikraft
// reproduction, mirroring the paper's §3.2: a small internal allocation
// interface that multiplexes one or more pluggable allocator backends,
// each owning its own memory region.
//
// Allocators manage a plain []byte arena and hand out Ptr values, which
// are byte offsets into that arena. Using offsets rather than raw Go
// pointers keeps every allocator implementation honest: all bookkeeping
// (headers, boundary tags, free lists) must live inside or alongside the
// arena exactly as it would in C, and property tests can verify that no
// two live allocations overlap.
package ukalloc

import (
	"errors"
	"fmt"
)

// Ptr is an allocation handle: a byte offset into the allocator's arena.
// The zero value is the nil pointer; no allocator ever returns offset 0
// (every backend reserves the front of its arena for private state or a
// guard region).
type Ptr int

// IsNil reports whether p is the nil allocation.
func (p Ptr) IsNil() bool { return p == 0 }

// Common allocator errors.
var (
	// ErrNoMem is returned when the arena cannot satisfy a request.
	ErrNoMem = errors.New("ukalloc: out of memory")
	// ErrBadPointer is returned when Free or Realloc receives a pointer
	// the allocator does not own or has already freed.
	ErrBadPointer = errors.New("ukalloc: bad pointer")
	// ErrBadAlign is returned by Memalign for a non-power-of-two
	// alignment.
	ErrBadAlign = errors.New("ukalloc: alignment not a power of two")
	// ErrHeapTooSmall is returned by Init when the arena cannot hold the
	// allocator's minimum metadata.
	ErrHeapTooSmall = errors.New("ukalloc: heap too small")
)

// Stats reports allocator health counters, in the spirit of
// uk_alloc_stats in upstream Unikraft.
type Stats struct {
	// HeapBytes is the total size of the arena the allocator manages.
	HeapBytes int
	// FreeBytes is the allocator's best estimate of allocatable bytes
	// remaining (excluding its own metadata and fragmentation holes it
	// cannot use).
	FreeBytes int
	// Mallocs and Frees count successful operations.
	Mallocs, Frees uint64
	// Failures counts allocation requests refused with ErrNoMem.
	Failures uint64
	// PeakUsed is the maximum of (HeapBytes - FreeBytes) observed.
	PeakUsed int
}

// CostSink receives the cycle cost of allocator work. The boot pipeline
// and the experiment harness pass a *sim.Machine (which implements this
// interface); unit tests and pure wall-clock benchmarks pass nil, which
// allocators must tolerate.
type CostSink interface {
	Charge(cycles uint64)
}

// Allocator is the ukalloc backend interface (the paper's struct
// uk_alloc function table). All five paper backends implement it: buddy,
// TLSF, tinyalloc, mimalloc and the boot-time region allocator.
type Allocator interface {
	// Name returns the backend's registry name ("buddy", "tlsf", ...).
	Name() string

	// Init takes ownership of the arena and prepares internal state.
	// It must be called exactly once before any allocation. Charged
	// boot-time work goes to the allocator's CostSink.
	Init(arena []byte) error

	// Malloc allocates n bytes, aligned to at least MinAlign.
	Malloc(n int) (Ptr, error)

	// Free releases an allocation returned by Malloc, Realloc or
	// Memalign. Freeing the nil Ptr is a no-op returning nil.
	Free(p Ptr) error

	// Realloc resizes an allocation, preserving min(old, new) bytes of
	// content. Realloc(nil, n) behaves like Malloc(n); Realloc(p, 0)
	// behaves like Free(p) and returns the nil Ptr.
	Realloc(p Ptr, n int) (Ptr, error)

	// Memalign allocates n bytes aligned to align, which must be a
	// power of two.
	Memalign(align, n int) (Ptr, error)

	// UsableSize reports the usable payload size of a live allocation;
	// it is at least the size requested.
	UsableSize(p Ptr) int

	// Arena returns the managed memory, for slicing out payload bytes.
	Arena() []byte

	// Stats returns current counters.
	Stats() Stats
}

// MinAlign is the minimum alignment every backend guarantees for Malloc,
// matching the platform ABI the paper targets (x86-64: 16 bytes).
const MinAlign = 16

// Bytes returns the payload [p, p+n) of a live allocation as a slice of
// the allocator's arena. It panics if the range falls outside the arena;
// overlap with metadata or other allocations is the allocator's
// responsibility and is what the property tests verify.
func Bytes(a Allocator, p Ptr, n int) []byte {
	arena := a.Arena()
	if p.IsNil() || int(p) < 0 || int(p)+n > len(arena) {
		panic(fmt.Sprintf("ukalloc: Bytes(%d, %d) out of arena [0,%d)", p, n, len(arena)))
	}
	return arena[int(p) : int(p)+n : int(p)+n]
}

// Calloc allocates n*size zeroed bytes from a.
func Calloc(a Allocator, n, size int) (Ptr, error) {
	if n < 0 || size < 0 {
		return 0, ErrNoMem
	}
	total := n * size
	if size != 0 && total/size != n {
		return 0, ErrNoMem // multiplication overflow
	}
	p, err := a.Malloc(total)
	if err != nil {
		return 0, err
	}
	b := Bytes(a, p, total)
	for i := range b {
		b[i] = 0
	}
	return p, nil
}

// AlignUp rounds n up to the next multiple of align (a power of two).
func AlignUp(n, align int) int { return (n + align - 1) &^ (align - 1) }

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }
