package ukalloc

import (
	"testing"

	"unikraft/internal/sim"
)

func TestShardsIsolation(t *testing.T) {
	ms := []*sim.Machine{sim.NewMachine(), sim.NewMachine()}
	s, err := NewShards("tlsf", 2, 1<<20, []CostSink{ms[0], ms[1]})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 2 {
		t.Fatalf("N = %d, want 2", s.N())
	}
	// Construction (Init) charges each shard's own sink; measure the
	// malloc against post-construction baselines.
	base0, base1 := ms[0].CPU.Cycles(), ms[1].CPU.Cycles()
	p0, err := s.Shard(0).Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0's work charges core 0 only.
	if ms[0].CPU.Cycles() == base0 {
		t.Fatal("shard 0 malloc charged nothing to core 0")
	}
	if ms[1].CPU.Cycles() != base1 {
		t.Fatal("shard 0 malloc charged core 1")
	}
	// Cross-shard free is a caught error, like a cross-CPU slab free.
	if err := s.Shard(1).Free(p0); err == nil {
		t.Fatal("cross-shard Free succeeded")
	}
	if err := s.Shard(0).Free(p0); err != nil {
		t.Fatalf("home-shard Free: %v", err)
	}
}

func TestShardsStatsAggregate(t *testing.T) {
	s, err := NewShards("tlsf", 4, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.N(); i++ {
		if _, err := s.Shard(i).Malloc(128); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Mallocs != 4 {
		t.Fatalf("aggregate Mallocs = %d, want 4", st.Mallocs)
	}
	if st.HeapBytes != 4<<20 {
		t.Fatalf("aggregate HeapBytes = %d, want %d", st.HeapBytes, 4<<20)
	}
}

func TestShardsValidation(t *testing.T) {
	if _, err := NewShards("tlsf", 0, 1<<20, nil); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := NewShards("no-such-backend", 2, 1<<20, nil); err == nil {
		t.Fatal("unknown backend accepted")
	}
	// Short sink slice: missing entries simply charge nothing.
	m := sim.NewMachine()
	s, err := NewShards("tlsf", 2, 1<<20, []CostSink{m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Shard(1).Malloc(64); err != nil {
		t.Fatal(err)
	}
}
