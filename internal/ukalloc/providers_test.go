package ukalloc_test

import (
	"sort"
	"testing"

	"unikraft/internal/ukalloc"
)

func TestProviderBackendMapping(t *testing.T) {
	cases := map[string]string{
		"ukallocbuddy": "buddy",
		"ukalloctlsf":  "tlsf",
		"ukalloctiny":  "tinyalloc",
		"ukallocmim":   "mimalloc",
		"ukallocboot":  "bootalloc",
	}
	for provider, backend := range cases {
		got, ok := ukalloc.BackendForProvider(provider)
		if !ok || got != backend {
			t.Errorf("BackendForProvider(%s) = %q, %v; want %q", provider, got, ok, backend)
		}
		p, ok := ukalloc.ProviderForBackend(backend)
		if !ok || p != provider {
			t.Errorf("ProviderForBackend(%s) = %q, %v; want %q", backend, p, ok, provider)
		}
	}
	if _, ok := ukalloc.BackendForProvider("ukallocnope"); ok {
		t.Error("unknown provider mapped")
	}
	if _, ok := ukalloc.ProviderForBackend("jemalloc"); ok {
		t.Error("unknown backend mapped")
	}
	if names := ukalloc.ProviderNames(); !sort.StringsAreSorted(names) || len(names) != len(cases) {
		t.Errorf("ProviderNames() = %v", names)
	}
}

func TestResolveBackend(t *testing.T) {
	// Provider names resolve without the backend being registered.
	if b, err := ukalloc.ResolveBackend("ukallocmim"); err != nil || b != "mimalloc" {
		t.Errorf("ResolveBackend(ukallocmim) = %q, %v", b, err)
	}
	// Registered backend names resolve to themselves ("tlsf" is
	// registered by this test binary's setup).
	if b, err := ukalloc.ResolveBackend("tlsf"); err != nil || b != "tlsf" {
		t.Errorf("ResolveBackend(tlsf) = %q, %v", b, err)
	}
	// Garbage errors with the valid choices listed.
	if _, err := ukalloc.ResolveBackend("jemalloc"); err == nil {
		t.Error("garbage allocator resolved")
	}
}
