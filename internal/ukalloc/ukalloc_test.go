package ukalloc_test

import (
	"testing"

	_ "unikraft/internal/allocators/bootalloc"
	_ "unikraft/internal/allocators/buddy"
	_ "unikraft/internal/allocators/mimalloc"
	_ "unikraft/internal/allocators/tinyalloc"
	_ "unikraft/internal/allocators/tlsf"
	"unikraft/internal/ukalloc"
)

func TestBackendRegistry(t *testing.T) {
	names := ukalloc.BackendNames()
	want := []string{"bootalloc", "buddy", "mimalloc", "tinyalloc", "tlsf"}
	if len(names) != len(want) {
		t.Fatalf("backends = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("backends = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		a, err := ukalloc.NewBackend(n, nil)
		if err != nil {
			t.Fatalf("NewBackend(%s): %v", n, err)
		}
		if a.Name() != n {
			t.Fatalf("backend %s reports name %s", n, a.Name())
		}
	}
	if _, err := ukalloc.NewBackend("jemalloc", nil); err == nil {
		t.Fatal("unknown backend constructed")
	}
}

func TestMultiplexingRegistry(t *testing.T) {
	// §3.2: multiple allocators in one image, each with its own region;
	// the first registered is the default (the boot-time allocator).
	var reg ukalloc.Registry
	if reg.Default() != nil {
		t.Fatal("empty registry has a default")
	}
	boot, _ := ukalloc.NewBackend("bootalloc", nil)
	boot.Init(make([]byte, 1<<20))
	main, _ := ukalloc.NewBackend("tlsf", nil)
	main.Init(make([]byte, 4<<20))

	reg.Register(boot)
	reg.Register(main)
	if reg.Default() != boot {
		t.Fatal("first registered not default")
	}
	// The GC/main allocator takes over after boot (the mimalloc
	// two-phase pattern from §3.2).
	if !reg.SetDefault(main) {
		t.Fatal("SetDefault failed")
	}
	if reg.Default() != main {
		t.Fatal("default not switched")
	}
	other, _ := ukalloc.NewBackend("tlsf", nil)
	if reg.SetDefault(other) {
		t.Fatal("unregistered allocator accepted as default")
	}
	if reg.ByName("bootalloc") != boot || reg.ByName("nope") != nil {
		t.Fatal("ByName broken")
	}
	if len(reg.All()) != 2 {
		t.Fatalf("All = %d", len(reg.All()))
	}
	// Both allocators serve from their own regions.
	p1, err := reg.ByName("bootalloc").Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := reg.Default().Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if p1.IsNil() || p2.IsNil() {
		t.Fatal("nil allocations")
	}
}

func TestHelpers(t *testing.T) {
	if !ukalloc.IsPow2(1) || !ukalloc.IsPow2(4096) || ukalloc.IsPow2(0) || ukalloc.IsPow2(3) {
		t.Fatal("IsPow2 broken")
	}
	if ukalloc.AlignUp(1, 16) != 16 || ukalloc.AlignUp(16, 16) != 16 || ukalloc.AlignUp(17, 16) != 32 {
		t.Fatal("AlignUp broken")
	}
}

func TestDuplicateBackendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	ukalloc.RegisterBackend("tlsf", nil)
}
