package ukalloc

import "fmt"

// Shards is the SMP allocation layout: one complete allocator per vCPU,
// each owning a private arena and charging its work to its own core's
// clock. Per-core arenas are the unikernel answer to allocator lock
// contention — a core's datapath (RX ring, netbufs, sockets) never
// touches another core's heap, so no shard ever synchronizes with
// another. Cross-shard frees are a programming error here, exactly as
// cross-CPU frees are in a real per-CPU slab: each shard's ErrBadPointer
// bookkeeping catches them.
type Shards struct {
	allocs []Allocator
}

// NewShards builds n initialized shards of backend `name` (backend or
// catalog-provider spelling), heapBytes each. sinks[i] receives shard
// i's cycle charges; sinks may be nil (no charging) or shorter than n
// (missing entries charge nothing).
func NewShards(name string, n, heapBytes int, sinks []CostSink) (*Shards, error) {
	if n < 1 {
		return nil, fmt.Errorf("ukalloc: NewShards with %d shards", n)
	}
	s := &Shards{allocs: make([]Allocator, n)}
	for i := 0; i < n; i++ {
		var sink CostSink
		if i < len(sinks) {
			sink = sinks[i]
		}
		a, err := NewInitialized(name, sink, heapBytes)
		if err != nil {
			return nil, fmt.Errorf("ukalloc: shard %d: %w", i, err)
		}
		s.allocs[i] = a
	}
	return s, nil
}

// N reports the shard count.
func (s *Shards) N() int { return len(s.allocs) }

// Shard returns core i's allocator.
func (s *Shards) Shard(i int) Allocator { return s.allocs[i] }

// Stats sums counters across shards; HeapBytes/FreeBytes aggregate and
// PeakUsed is the sum of per-shard peaks (an upper bound on concurrent
// usage).
func (s *Shards) Stats() Stats {
	var agg Stats
	for _, a := range s.allocs {
		st := a.Stats()
		agg.HeapBytes += st.HeapBytes
		agg.FreeBytes += st.FreeBytes
		agg.Mallocs += st.Mallocs
		agg.Frees += st.Frees
		agg.Failures += st.Failures
		agg.PeakUsed += st.PeakUsed
	}
	return agg
}
