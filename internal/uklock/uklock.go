// Package uklock provides the synchronization micro-library from the
// paper's §3.3: mutexes and semaphores whose implementation is selected
// by how the unikernel is configured. In the simplest configuration (no
// threading, single core) the primitives compile out entirely — here,
// the zero-cost NullLock — while threaded configurations get real
// primitives built on uksched wait queues.
//
// Because the simulated machine is single-core (as in the paper's
// evaluation), there are no spinlock/RCU variants; the paper notes
// multi-core support is work in progress.
package uklock

import (
	"unikraft/internal/uksched"
)

// Locker is the uklock facade: configurations choose NullLock (no
// threading) or Mutex (threading on).
type Locker interface {
	Lock(t *uksched.Thread)
	Unlock(t *uksched.Thread)
}

// NullLock is the compiled-out variant used by single-threaded,
// run-to-completion images: mutual exclusion is structural, so locking
// is free.
type NullLock struct{}

// Lock implements Locker as a no-op.
func (NullLock) Lock(*uksched.Thread) {}

// Unlock implements Locker as a no-op.
func (NullLock) Unlock(*uksched.Thread) {}

// Mutex is a sleeping mutual-exclusion lock for threaded images.
type Mutex struct {
	owner *uksched.Thread
	depth int // recursion depth; Unikraft's uk_mutex is recursive
	wq    uksched.WaitQueue
}

// Lock acquires m, parking t until it is available. The mutex is
// recursive, matching uk_mutex semantics.
func (m *Mutex) Lock(t *uksched.Thread) {
	if m.owner == t {
		m.depth++
		return
	}
	for m.owner != nil {
		m.wq.Wait(t)
	}
	m.owner = t
	m.depth = 1
	t.Charge(20) // uncontended acquire: one CAS-equivalent
}

// TryLock acquires m without blocking; reports success.
func (m *Mutex) TryLock(t *uksched.Thread) bool {
	if m.owner == t {
		m.depth++
		return true
	}
	if m.owner != nil {
		return false
	}
	m.owner = t
	m.depth = 1
	t.Charge(20)
	return true
}

// Unlock releases m. It panics if t is not the owner (a correctness bug
// in the caller, as in Unikraft's UK_ASSERT).
func (m *Mutex) Unlock(t *uksched.Thread) {
	if m.owner != t {
		panic("uklock: Unlock by non-owner")
	}
	m.depth--
	if m.depth > 0 {
		return
	}
	m.owner = nil
	m.wq.WakeOne()
	t.Charge(20)
}

// Owner reports the current owner (nil when unlocked); for tests.
func (m *Mutex) Owner() *uksched.Thread { return m.owner }

// Semaphore is a counting semaphore.
type Semaphore struct {
	count int
	wq    uksched.WaitQueue
}

// NewSemaphore creates a semaphore with an initial count.
func NewSemaphore(initial int) *Semaphore { return &Semaphore{count: initial} }

// Down decrements the semaphore, parking t while the count is zero.
func (s *Semaphore) Down(t *uksched.Thread) {
	for s.count == 0 {
		s.wq.Wait(t)
	}
	s.count--
	t.Charge(20)
}

// TryDown decrements without blocking; reports success.
func (s *Semaphore) TryDown(t *uksched.Thread) bool {
	if s.count == 0 {
		return false
	}
	s.count--
	t.Charge(20)
	return true
}

// Up increments the semaphore and wakes one waiter.
func (s *Semaphore) Up(t *uksched.Thread) {
	s.count++
	s.wq.WakeOne()
	if t != nil {
		t.Charge(20)
	}
}

// Count reports the current count; for tests.
func (s *Semaphore) Count() int { return s.count }

// CondVar is a condition variable bound to a Mutex, completing the
// uklock primitive set. Wait atomically releases the mutex and parks the
// thread; Signal/Broadcast wake waiters, which re-acquire the mutex
// before returning.
type CondVar struct {
	wq uksched.WaitQueue
}

// Wait releases m, parks t until signalled, then re-acquires m. The
// caller must hold m and must re-check its condition on return
// (spurious-wakeup discipline).
func (cv *CondVar) Wait(t *uksched.Thread, m *Mutex) {
	m.Unlock(t)
	cv.wq.Wait(t)
	m.Lock(t)
}

// Signal wakes one waiter.
func (cv *CondVar) Signal() { cv.wq.WakeOne() }

// Broadcast wakes every waiter.
func (cv *CondVar) Broadcast() { cv.wq.WakeAll() }
