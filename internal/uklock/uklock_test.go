package uklock

import (
	"testing"

	"unikraft/internal/sim"
	"unikraft/internal/uksched"
)

func TestMutexMutualExclusion(t *testing.T) {
	s := uksched.New(uksched.Cooperative, sim.NewMachine())
	defer s.Shutdown()
	var mu Mutex
	inCritical := 0
	maxInCritical := 0
	for i := 0; i < 4; i++ {
		s.NewThread("worker", func(th *uksched.Thread) {
			for j := 0; j < 10; j++ {
				mu.Lock(th)
				inCritical++
				if inCritical > maxInCritical {
					maxInCritical = inCritical
				}
				th.Yield() // try to interleave inside the critical section
				inCritical--
				mu.Unlock(th)
			}
		})
	}
	if blocked := s.Run(); blocked != 0 {
		t.Fatalf("deadlock: %d blocked", blocked)
	}
	if maxInCritical != 1 {
		t.Fatalf("max threads in critical section = %d, want 1", maxInCritical)
	}
}

func TestMutexRecursive(t *testing.T) {
	s := uksched.New(uksched.Cooperative, sim.NewMachine())
	defer s.Shutdown()
	var mu Mutex
	ok := false
	s.NewThread("rec", func(th *uksched.Thread) {
		mu.Lock(th)
		mu.Lock(th) // recursive acquire must not deadlock
		mu.Unlock(th)
		if mu.Owner() != th {
			t.Error("mutex released after inner unlock")
		}
		mu.Unlock(th)
		ok = true
	})
	s.Run()
	if !ok {
		t.Fatal("thread did not complete")
	}
	if mu.Owner() != nil {
		t.Fatal("mutex still owned")
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	s := uksched.New(uksched.Cooperative, sim.NewMachine())
	defer s.Shutdown()
	var mu Mutex
	var recovered any
	s.NewThread("a", func(th *uksched.Thread) { mu.Lock(th) })
	s.NewThread("b", func(th *uksched.Thread) {
		defer func() { recovered = recover() }()
		mu.Unlock(th)
	})
	s.Run()
	if recovered == nil {
		t.Fatal("Unlock by non-owner did not panic")
	}
}

func TestTryLock(t *testing.T) {
	s := uksched.New(uksched.Cooperative, sim.NewMachine())
	defer s.Shutdown()
	var mu Mutex
	results := map[string]bool{}
	s.NewThread("holder", func(th *uksched.Thread) {
		mu.Lock(th)
		th.Yield()
		mu.Unlock(th)
	})
	s.NewThread("trier", func(th *uksched.Thread) {
		results["whileHeld"] = mu.TryLock(th)
		th.Yield()
		results["afterRelease"] = mu.TryLock(th)
		if results["afterRelease"] {
			mu.Unlock(th)
		}
	})
	s.Run()
	if results["whileHeld"] {
		t.Error("TryLock succeeded while held by another thread")
	}
	if !results["afterRelease"] {
		t.Error("TryLock failed after release")
	}
}

func TestSemaphoreProducerConsumer(t *testing.T) {
	s := uksched.New(uksched.Cooperative, sim.NewMachine())
	defer s.Shutdown()
	items := NewSemaphore(0)
	var queue []int
	var got []int
	s.NewThread("consumer", func(th *uksched.Thread) {
		for i := 0; i < 5; i++ {
			items.Down(th)
			got = append(got, queue[0])
			queue = queue[1:]
		}
	})
	s.NewThread("producer", func(th *uksched.Thread) {
		for i := 1; i <= 5; i++ {
			queue = append(queue, i)
			items.Up(th)
			th.Yield()
		}
	})
	if blocked := s.Run(); blocked != 0 {
		t.Fatalf("blocked = %d", blocked)
	}
	if len(got) != 5 {
		t.Fatalf("consumed %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got = %v, want 1..5 in order", got)
		}
	}
}

func TestSemaphoreInitialCount(t *testing.T) {
	s := uksched.New(uksched.Cooperative, sim.NewMachine())
	defer s.Shutdown()
	sem := NewSemaphore(2)
	acquired := 0
	for i := 0; i < 3; i++ {
		s.NewThread("w", func(th *uksched.Thread) {
			if sem.TryDown(th) {
				acquired++
			}
		})
	}
	s.Run()
	if acquired != 2 {
		t.Fatalf("acquired = %d, want 2 (initial count)", acquired)
	}
}

func TestNullLockIsFree(t *testing.T) {
	m := sim.NewMachine()
	s := uksched.New(uksched.Cooperative, m)
	defer s.Shutdown()
	var l Locker = NullLock{}
	s.NewThread("w", func(th *uksched.Thread) {
		before := m.CPU.Cycles()
		for i := 0; i < 100; i++ {
			l.Lock(th)
			l.Unlock(th)
		}
		if m.CPU.Cycles() != before {
			t.Error("NullLock charged cycles; must compile out")
		}
	})
	s.Run()
}

func TestCondVarProducerConsumer(t *testing.T) {
	s := uksched.New(uksched.Cooperative, sim.NewMachine())
	defer s.Shutdown()
	var mu Mutex
	var cv CondVar
	queue := 0
	consumed := 0
	s.NewThread("consumer", func(th *uksched.Thread) {
		for i := 0; i < 3; i++ {
			mu.Lock(th)
			for queue == 0 {
				cv.Wait(th, &mu)
			}
			queue--
			consumed++
			mu.Unlock(th)
		}
	})
	s.NewThread("producer", func(th *uksched.Thread) {
		for i := 0; i < 3; i++ {
			mu.Lock(th)
			queue++
			mu.Unlock(th)
			cv.Signal()
			th.Yield()
		}
	})
	if blocked := s.Run(); blocked != 0 {
		t.Fatalf("deadlock: %d blocked", blocked)
	}
	if consumed != 3 {
		t.Fatalf("consumed = %d", consumed)
	}
	if mu.Owner() != nil {
		t.Fatal("mutex leaked")
	}
}

func TestCondVarBroadcast(t *testing.T) {
	s := uksched.New(uksched.Cooperative, sim.NewMachine())
	defer s.Shutdown()
	var mu Mutex
	var cv CondVar
	ready := false
	woke := 0
	for i := 0; i < 4; i++ {
		s.NewThread("waiter", func(th *uksched.Thread) {
			mu.Lock(th)
			for !ready {
				cv.Wait(th, &mu)
			}
			woke++
			mu.Unlock(th)
		})
	}
	s.NewThread("broadcaster", func(th *uksched.Thread) {
		mu.Lock(th)
		ready = true
		mu.Unlock(th)
		cv.Broadcast()
	})
	if blocked := s.Run(); blocked != 0 {
		t.Fatalf("blocked = %d", blocked)
	}
	if woke != 4 {
		t.Fatalf("woke = %d", woke)
	}
}
