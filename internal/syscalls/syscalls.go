// Package syscalls reproduces the paper's application-compatibility
// analysis (§4.1, Figures 5 and 7): which Linux syscalls the 30 most
// popular Debian server applications require, which of those Unikraft
// supports, and how much closer full support gets if the next most
// common missing syscalls are implemented.
//
// The Unikraft-supported set is transcribed from Figure 5's annotated
// heatmap. The per-application requirement sets are synthesized from a
// common POSIX server profile plus per-application extras (the paper
// derived them with strace-based dynamic analysis; the raw sets are not
// published), which preserves the figure's structure: every app is
// mostly green, a small shared tail of missing syscalls dominates.
package syscalls

import (
	"fmt"
	"sort"
	"strings"
)

// MaxNr is the highest syscall number on the Fig 5 map (finit_module).
const MaxNr = 313

// SupportedNumbers is the set of syscalls implemented by Unikraft as of
// the paper (146 syscalls; Figure 5's numbered squares).
var SupportedNumbers = buildSupported()

func buildSupported() []int {
	// Transcribed from Figure 5: ranges are inclusive.
	ranges := [][2]int{
		{0, 24}, {26, 26}, {28, 28}, {32, 35}, {37, 56}, {59, 63},
		{72, 89}, {90, 93}, {95, 100}, {102, 119}, {120, 121}, {124, 124},
		{132, 133}, {140, 141}, {157, 158}, {160, 161}, {165, 166}, {170, 170},
		{201, 202}, {204, 205}, {211, 211}, {213, 213}, {217, 218},
		{228, 233}, {235, 235}, {257, 257}, {261, 261}, {269, 269},
		{271, 271}, {273, 273}, {280, 281}, {285, 285}, {288, 288},
		{291, 293}, {295, 296}, {302, 302},
	}
	var out []int
	for _, r := range ranges {
		for n := r[0]; n <= r[1]; n++ {
			out = append(out, n)
		}
	}
	return out
}

// names for the syscalls the analysis talks about.
var names = map[int]string{
	0: "read", 1: "write", 2: "open", 3: "close", 4: "stat", 5: "fstat",
	7: "poll", 8: "lseek", 9: "mmap", 12: "brk", 13: "rt_sigaction",
	16: "ioctl", 22: "pipe", 23: "select", 32: "dup", 33: "dup2",
	39: "getpid", 41: "socket", 42: "connect", 43: "accept", 44: "sendto",
	45: "recvfrom", 46: "sendmsg", 47: "recvmsg", 48: "shutdown",
	49: "bind", 50: "listen", 54: "setsockopt", 56: "clone", 57: "fork",
	59: "execve", 60: "exit", 61: "wait4", 62: "kill", 64: "semget",
	65: "semop", 66: "semctl", 72: "fcntl", 78: "getdents", 83: "mkdir",
	87: "unlink", 96: "gettimeofday", 102: "getuid", 128: "rt_sigtimedwait",
	186: "gettid", 202: "futex", 213: "epoll_create", 218: "set_tid_address",
	228: "clock_gettime", 231: "exit_group", 232: "epoll_wait",
	233: "epoll_ctl", 257: "openat", 281: "epoll_pwait", 284: "eventfd",
	290: "eventfd2", 291: "epoll_create1", 302: "prlimit64",
	309: "getcpu", 313: "finit_module",
}

// Name returns a syscall's name ("sys_<nr>" when unknown to the table).
func Name(nr int) string {
	if n, ok := names[nr]; ok {
		return n
	}
	return fmt.Sprintf("sys_%d", nr)
}

// App is one analyzed server application with its required syscall set.
type App struct {
	Name     string
	Required []int
}

// commonServerSet is the POSIX baseline every server app needs: file
// I/O, memory, signals, identity, sockets, time.
var commonServerSet = []int{
	0, 1, 2, 3, 4, 5, 8, 9, 10, 11, 12, 13, 14, 16, 21, 22, 23, 32, 33,
	39, 41, 42, 43, 44, 45, 48, 49, 50, 51, 52, 54, 55, 59, 60, 63, 72,
	78, 79, 83, 87, 89, 96, 97, 99, 102, 104, 107, 108, 110, 116,
	137, 157, 158, 186, 201, 202, 218, 228, 231, 257, 273, 302,
}

// perAppExtras differentiates the 30 applications. Unsupported numbers
// (not in SupportedNumbers) drive Fig 7's non-green tail: 7=poll is
// supported... the heavy hitters are epoll (213/232/233), eventfd (284/
// 290), semaphores (64-66), fork/clone (56/57), getcpu (309).
var perAppExtras = map[string][]int{
	"apache":        {7, 56, 57, 61, 64, 65, 66, 213, 232, 233, 290},
	"avahi":         {7, 16, 47, 46, 128},
	"bind9":         {7, 46, 47, 56, 213, 232, 233, 290},
	"dovecot":       {7, 56, 57, 61, 213, 232, 233, 284},
	"exim":          {7, 56, 57, 61, 64},
	"firebird":      {7, 56, 64, 65, 66, 213, 232, 233},
	"groonga":       {7, 213, 232, 233},
	"h2o":           {7, 213, 232, 233, 290, 309},
	"influxdb":      {7, 213, 232, 233, 284, 290},
	"knot":          {7, 46, 47, 213, 232, 233, 309},
	"lighttpd":      {7, 213, 232, 233},
	"mariadb":       {7, 56, 64, 65, 66, 213, 232, 233, 284},
	"memcached":     {7, 213, 232, 233, 284},
	"mongodb":       {7, 56, 213, 232, 233, 284, 290, 309},
	"mongoose":      {7, 23},
	"mongrel":       {7, 23, 56},
	"mutt":          {7, 23},
	"mysql":         {7, 56, 64, 65, 66, 213, 232, 233, 284},
	"nghttp":        {7, 213, 232, 233, 290},
	"nginx":         {7, 46, 47, 213, 232, 233},
	"nullmailer":    {7, 23},
	"openlitespeed": {7, 56, 57, 213, 232, 233, 290},
	"opensmtpd":     {7, 56, 57, 61, 213, 232, 233},
	"postgresql":    {7, 56, 57, 61, 64, 65, 66, 23},
	"redis":         {7, 213, 232, 233},
	"sqlite3":       {7},
	"tntnet":        {7, 56, 213, 232, 233},
	"webfs":         {7, 23},
	"weborf":        {7, 23, 56},
	"whitedb":       {7, 64, 65, 66},
}

// Top30Apps returns the analyzed application set, sorted by name, each
// with its deduplicated, sorted requirement set.
func Top30Apps() []App {
	var out []App
	for name, extras := range perAppExtras {
		set := map[int]bool{}
		for _, n := range commonServerSet {
			set[n] = true
		}
		for _, n := range extras {
			set[n] = true
		}
		req := make([]int, 0, len(set))
		for n := range set {
			req = append(req, n)
		}
		sort.Ints(req)
		out = append(out, App{Name: name, Required: req})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Analysis is the Fig 5/7 computation result.
type Analysis struct {
	Apps      []App
	Supported map[int]bool
	// UsageCount[nr] counts how many apps require nr.
	UsageCount map[int]int
}

// Analyze runs the Fig 5/7 pipeline over the app set and supported
// list.
func Analyze(apps []App, supported []int) *Analysis {
	a := &Analysis{Apps: apps, Supported: map[int]bool{}, UsageCount: map[int]int{}}
	for _, nr := range supported {
		a.Supported[nr] = true
	}
	for _, app := range apps {
		for _, nr := range app.Required {
			a.UsageCount[nr]++
		}
	}
	return a
}

// SupportPercent reports the fraction of app's required syscalls that
// are supported, optionally treating `extra` numbers as implemented
// (the Fig 7 "+top5/+top10" scenarios).
func (a *Analysis) SupportPercent(app App, extra map[int]bool) float64 {
	if len(app.Required) == 0 {
		return 100
	}
	got := 0
	for _, nr := range app.Required {
		if a.Supported[nr] || (extra != nil && extra[nr]) {
			got++
		}
	}
	return 100 * float64(got) / float64(len(app.Required))
}

// TopMissing returns the k unsupported syscalls required by the most
// apps — the paper's "next 5 / next 10 most common syscalls".
func (a *Analysis) TopMissing(k int) []int {
	type cand struct{ nr, count int }
	var cands []cand
	for nr, cnt := range a.UsageCount {
		if !a.Supported[nr] {
			cands = append(cands, cand{nr, cnt})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].count != cands[j].count {
			return cands[i].count > cands[j].count
		}
		return cands[i].nr < cands[j].nr
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].nr
	}
	return out
}

// Fig7Row is one bar of Figure 7.
type Fig7Row struct {
	App                         string
	Base, Top5, Top10, Complete float64
}

// Fig7 computes every application's support progression.
func (a *Analysis) Fig7() []Fig7Row {
	top5 := setOf(a.TopMissing(5))
	top10 := setOf(a.TopMissing(10))
	var rows []Fig7Row
	for _, app := range a.Apps {
		rows = append(rows, Fig7Row{
			App:      app.Name,
			Base:     a.SupportPercent(app, nil),
			Top5:     a.SupportPercent(app, top5),
			Top10:    a.SupportPercent(app, top10),
			Complete: 100,
		})
	}
	return rows
}

func setOf(nrs []int) map[int]bool {
	m := map[int]bool{}
	for _, n := range nrs {
		m[n] = true
	}
	return m
}

// Heatmap renders the Figure 5 text heatmap: one cell per syscall
// number, '#'-shaded by how many apps need it, with supported syscalls
// marked.
func (a *Analysis) Heatmap(width int) string {
	if width <= 0 {
		width = 16
	}
	var b strings.Builder
	total := len(a.Apps)
	for nr := 0; nr <= MaxNr; nr++ {
		if nr%width == 0 {
			if nr > 0 {
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "%3d: ", nr)
		}
		cnt := a.UsageCount[nr]
		var shade byte
		switch {
		case cnt == 0:
			shade = '.'
		case cnt <= total/5:
			shade = '-'
		case cnt <= total/2:
			shade = '+'
		default:
			shade = '#'
		}
		if a.Supported[nr] {
			b.WriteByte(shade)
		} else if cnt > 0 {
			b.WriteByte('!') // needed but unsupported
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('\n')
	return b.String()
}
