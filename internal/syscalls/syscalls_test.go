package syscalls

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSupportedCount(t *testing.T) {
	// §4.1: "we have implementations for 146 syscalls".
	if got := len(SupportedNumbers); got < 140 || got > 152 {
		t.Fatalf("supported = %d, want ~146", got)
	}
	seen := map[int]bool{}
	for _, nr := range SupportedNumbers {
		if nr < 0 || nr > MaxNr {
			t.Fatalf("syscall %d out of map range", nr)
		}
		if seen[nr] {
			t.Fatalf("duplicate %d", nr)
		}
		seen[nr] = true
	}
	for _, must := range []int{0, 1, 2, 3, 41, 44, 45, 228, 257} {
		if !seen[must] {
			t.Errorf("core syscall %d (%s) missing from supported set", must, Name(must))
		}
	}
}

func TestThirtyApps(t *testing.T) {
	apps := Top30Apps()
	if len(apps) != 30 {
		t.Fatalf("apps = %d, want 30", len(apps))
	}
	for _, a := range apps {
		if len(a.Required) < 50 {
			t.Errorf("%s requires only %d syscalls; server apps need more", a.Name, len(a.Required))
		}
		for i := 1; i < len(a.Required); i++ {
			if a.Required[i] <= a.Required[i-1] {
				t.Fatalf("%s requirement set not sorted/unique", a.Name)
			}
		}
	}
}

func TestFig7Properties(t *testing.T) {
	a := Analyze(Top30Apps(), SupportedNumbers)
	rows := a.Fig7()
	if len(rows) != 30 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's first take-away: every app is mostly green.
		if r.Base < 80 {
			t.Errorf("%s base support = %.1f%%, want mostly-supported", r.App, r.Base)
		}
		// Monotone progression.
		if !(r.Base <= r.Top5 && r.Top5 <= r.Top10 && r.Top10 <= r.Complete) {
			t.Errorf("%s progression not monotone: %+v", r.App, r)
		}
		if r.Complete != 100 {
			t.Errorf("%s complete = %.1f", r.App, r.Complete)
		}
	}
}

func TestTopMissingOrdering(t *testing.T) {
	a := Analyze(Top30Apps(), SupportedNumbers)
	top := a.TopMissing(10)
	if len(top) != 10 {
		t.Fatalf("top = %v", top)
	}
	for i := 1; i < len(top); i++ {
		if a.UsageCount[top[i]] > a.UsageCount[top[i-1]] {
			t.Fatalf("not demand-ordered: %v", top)
		}
	}
	for _, nr := range top {
		if a.Supported[nr] {
			t.Fatalf("supported syscall %d in missing list", nr)
		}
	}
	// The top missing syscall must be one every app needs (the shared
	// POSIX tail: statfs, epoll-family, etc.).
	if a.UsageCount[top[0]] != len(a.Apps) {
		t.Errorf("top missing %d (%s) needed by %d/%d apps; expected a universal gap",
			top[0], Name(top[0]), a.UsageCount[top[0]], len(a.Apps))
	}
}

func TestSupportPercentWithExtras(t *testing.T) {
	a := Analyze(Top30Apps(), SupportedNumbers)
	app := a.Apps[0]
	base := a.SupportPercent(app, nil)
	all := map[int]bool{}
	for _, nr := range app.Required {
		all[nr] = true
	}
	if got := a.SupportPercent(app, all); got != 100 {
		t.Fatalf("full extras = %.1f", got)
	}
	if base >= 100 {
		t.Fatalf("base = %.1f; dataset should have gaps", base)
	}
}

func TestHeatmapRendering(t *testing.T) {
	a := Analyze(Top30Apps(), SupportedNumbers)
	hm := a.Heatmap(32)
	if !strings.Contains(hm, "#") {
		t.Error("no hot cells in heatmap")
	}
	if !strings.Contains(hm, "!") {
		t.Error("no needed-but-unsupported cells")
	}
	lines := strings.Count(hm, "\n")
	if lines < (MaxNr+1)/32 {
		t.Errorf("heatmap lines = %d", lines)
	}
}

// TestAnalyzeQuick property: support percent is always within [0,100]
// and adding extras never decreases it.
func TestAnalyzeQuick(t *testing.T) {
	a := Analyze(Top30Apps(), SupportedNumbers)
	f := func(extraRaw []uint16, appIdx uint8) bool {
		app := a.Apps[int(appIdx)%len(a.Apps)]
		extra := map[int]bool{}
		for _, e := range extraRaw {
			extra[int(e)%(MaxNr+1)] = true
		}
		base := a.SupportPercent(app, nil)
		with := a.SupportPercent(app, extra)
		return base >= 0 && with <= 100 && with >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
