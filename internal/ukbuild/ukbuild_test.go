package ukbuild

import (
	"math"
	"testing"

	"unikraft/internal/core"
)

func buildApp(t *testing.T, name string, opts Options) *Image {
	t.Helper()
	cat := core.DefaultCatalog()
	app, ok := core.AppByName(name)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	img, err := Build(cat, app, "kvm", opts)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// withinPct asserts |got-want|/want <= pct/100.
func withinPct(t *testing.T, label string, got, want, pct float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero target", label)
	}
	if math.Abs(got-want)/want > pct/100 {
		t.Errorf("%s = %.1f, want %.1f (±%.0f%%)", label, got, want, pct)
	}
}

// TestFig8ImageSizes checks the four Fig 8 columns for all four apps.
func TestFig8ImageSizes(t *testing.T) {
	want := map[string][4]float64{ // KB: default, +LTO, +DCE, +DCE+LTO
		"helloworld": {256.7, 256.7, 192.7, 192.7},
		"nginx":      {1600, 1200, 832.8, 832.8},
		"redis":      {1800, 1400, 1100, 1100},
		"sqlite":     {1600, 1300, 832.8, 832.8},
	}
	cols := []Options{{}, {LTO: true}, {DCE: true}, {DCE: true, LTO: true}}
	for app, targets := range want {
		for i, opts := range cols {
			img := buildApp(t, app, opts)
			withinPct(t, app+optsLabel(opts), float64(img.Bytes)/1024, targets[i], 5)
		}
	}
}

func optsLabel(o Options) string {
	switch {
	case o.DCE && o.LTO:
		return "+dce+lto"
	case o.DCE:
		return "+dce"
	case o.LTO:
		return "+lto"
	}
	return "+default"
}

// TestDCESupersedesLTO: the paper's identity DCE+LTO == DCE.
func TestDCESupersedesLTO(t *testing.T) {
	for _, app := range []string{"helloworld", "nginx", "redis", "sqlite"} {
		dce := buildApp(t, app, Options{DCE: true})
		both := buildApp(t, app, Options{DCE: true, LTO: true})
		if dce.Bytes != both.Bytes {
			t.Errorf("%s: DCE %d != DCE+LTO %d", app, dce.Bytes, both.Bytes)
		}
	}
}

// TestOptionsMonotone: enabling an optimization never grows the image.
func TestOptionsMonotone(t *testing.T) {
	for _, app := range []string{"helloworld", "nginx", "redis", "sqlite", "webcache", "udpkv"} {
		def := buildApp(t, app, Options{})
		lto := buildApp(t, app, Options{LTO: true})
		dce := buildApp(t, app, Options{DCE: true})
		if lto.Bytes > def.Bytes || dce.Bytes > def.Bytes {
			t.Errorf("%s: lto=%d dce=%d default=%d", app, lto.Bytes, dce.Bytes, def.Bytes)
		}
		if def.RemovedBytes != 0 {
			t.Errorf("%s: default link removed %d bytes", app, def.RemovedBytes)
		}
		if dce.RemovedBytes+dce.Bytes != def.Bytes {
			t.Errorf("%s: removed+kept != total", app)
		}
	}
}

// TestHelloXenSmaller: the Xen platform library is far smaller (§3:
// 200KB on KVM vs 40KB on Xen for helloworld).
func TestHelloXenSmaller(t *testing.T) {
	cat := core.DefaultCatalog()
	app, _ := core.AppByName("helloworld")
	kvm, err := Build(cat, app, "kvm", Options{DCE: true})
	if err != nil {
		t.Fatal(err)
	}
	xen, err := Build(cat, app, "xen", Options{DCE: true})
	if err != nil {
		t.Fatal(err)
	}
	if xen.Bytes >= kvm.Bytes/2 {
		t.Errorf("xen hello = %d, kvm = %d; want xen much smaller", xen.Bytes, kvm.Bytes)
	}
}

// TestClosureContents: nginx pulls the network stack; sqlite does not
// (the paper's §3 point about the nginx image lacking a block subsystem
// and hello lacking everything).
func TestClosureContents(t *testing.T) {
	nginx := buildApp(t, "nginx", Options{})
	sqlite := buildApp(t, "sqlite", Options{})
	hello := buildApp(t, "helloworld", Options{})
	has := func(img *Image, lib string) bool {
		for _, l := range img.Libs {
			if l == lib {
				return true
			}
		}
		return false
	}
	if !has(nginx, "lwip") || !has(nginx, "uknetdev") {
		t.Error("nginx image lacks the network stack")
	}
	if has(sqlite, "lwip") || has(sqlite, "uknetdev") {
		t.Error("sqlite image includes the network stack it does not need")
	}
	if has(hello, "vfscore") || has(hello, "lwip") || has(hello, "uksched") {
		t.Errorf("hello image over-linked: %v", hello.Libs)
	}
	if len(hello.Libs) >= len(sqlite.Libs) {
		t.Errorf("hello closure (%d libs) not smaller than sqlite (%d)", len(hello.Libs), len(sqlite.Libs))
	}
}

// TestAllocatorSwap: switching the ukalloc provider swaps exactly the
// backend library (the paper's interchangeability claim).
func TestAllocatorSwap(t *testing.T) {
	cat := core.DefaultCatalog()
	app, _ := core.AppByName("nginx")
	app.Allocator = "ukallocbuddy"
	withBuddy, err := Build(cat, app, "kvm", Options{})
	if err != nil {
		t.Fatal(err)
	}
	app.Allocator = "ukallocmim"
	withMim, err := Build(cat, app, "kvm", Options{})
	if err != nil {
		t.Fatal(err)
	}
	has := func(img *Image, lib string) bool {
		for _, l := range img.Libs {
			if l == lib {
				return true
			}
		}
		return false
	}
	if !has(withBuddy, "ukallocbuddy") || has(withBuddy, "ukallocmim") {
		t.Errorf("buddy build libs: %v", withBuddy.Libs)
	}
	if !has(withMim, "ukallocmim") || has(withMim, "ukallocbuddy") {
		t.Errorf("mimalloc build libs: %v", withMim.Libs)
	}
}

// TestMissingProviderError: an unsatisfiable API is a build error, not a
// silent link.
func TestMissingProviderError(t *testing.T) {
	cat := core.NewCatalog()
	cat.Add(&core.Library{Name: "app-x", Needs: []string{"nothing-provides-this"}})
	_, err := cat.Closure([]string{"app-x"}, nil)
	if err == nil {
		t.Fatal("closure with unsatisfiable API succeeded")
	}
}

// TestPlatformMismatch: linking a xen-only library into a kvm image
// fails loudly.
func TestPlatformMismatch(t *testing.T) {
	cat := core.DefaultCatalog()
	app := core.AppProfile{Name: "bad", Lib: "netfront", Libc: "nolibc", Allocator: "ukallocboot"}
	if _, err := Build(cat, app, "kvm", Options{}); err == nil {
		t.Fatal("xen-only lib linked into kvm image")
	}
}

func TestKBFormatting(t *testing.T) {
	if got := KB(256 * 1024); got != "256.0KB" {
		t.Errorf("KB = %q", got)
	}
	if got := KB(1600 * 1024); got != "1.6MB" {
		t.Errorf("MB = %q", got)
	}
}
