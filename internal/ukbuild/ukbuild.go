// Package ukbuild is the link step of the build system: it takes a
// resolved micro-library closure and produces an image, applying dead
// code elimination (reachability over the symbol reference graph, the
// moral equivalent of -ffunction-sections + --gc-sections) and link-time
// optimization (elimination of out-of-line comdat copies whose every
// call site was inlined), the two switches the paper sweeps in Fig 8.
package ukbuild

import (
	"fmt"
	"sort"

	"unikraft/internal/core"
)

// Options are the link-time switches.
type Options struct {
	DCE bool // dead code elimination (--gc-sections)
	LTO bool // link-time optimization
}

// Image is a linked unikernel.
type Image struct {
	App      string
	Platform string
	Options  Options
	// Libs is the linked closure, sorted by name.
	Libs []string
	// Bytes is total image size.
	Bytes int
	// PerLib breaks the size down by library.
	PerLib map[string]int
	// Symbols counts linked symbols.
	Symbols int
	// RemovedBytes counts what DCE/LTO dropped.
	RemovedBytes int
}

// Providers returns the API-provider selection an application profile
// implies on a platform — the single place the profile-to-Kconfig
// mapping lives (the build step, dependency-graph tools and the
// experiment harness all resolve through it).
func Providers(app core.AppProfile, platform string) map[string]string {
	providers := map[string]string{"plat": "plat-" + platform}
	if app.Libc != "" {
		providers["libc"] = app.Libc
	}
	if app.Allocator != "" {
		providers["ukalloc"] = app.Allocator
	}
	if app.Scheduler != "" {
		providers["uksched"] = app.Scheduler
	}
	if app.NICs > 0 {
		providers["netstack"] = "lwip"
		providers["netdev"] = "uknetdev"
	}
	return providers
}

// Build resolves an application profile against the catalog and links
// it for the given platform ("kvm", "xen", "solo5", "linuxu").
func Build(c *core.Catalog, app core.AppProfile, platform string, opts Options) (*Image, error) {
	providers := Providers(app, platform)
	closure, err := c.Closure([]string{app.Lib}, providers)
	if err != nil {
		return nil, fmt.Errorf("ukbuild: resolving %s: %w", app.Name, err)
	}
	// Platform filtering: a library tied to a different platform in the
	// closure is a configuration error.
	for _, l := range closure {
		if l.Platform != "" && l.Platform != platform {
			return nil, fmt.Errorf("ukbuild: %s is %s-only but target is %s", l.Name, l.Platform, platform)
		}
	}
	return Link(app, platform, closure, opts), nil
}

// Link produces the image from an explicit closure.
func Link(app core.AppProfile, platform string, closure []*core.Library, opts Options) *Image {
	img := &Image{
		App:      app.Name,
		Platform: platform,
		Options:  opts,
		PerLib:   map[string]int{},
	}
	// Gather all symbols and the reachability roots: every library's
	// entry symbol is referenced from the image's init table (Unikraft
	// constructors), so the used chains are live.
	type located struct {
		lib *core.Library
		sym core.Symbol
	}
	byName := map[string][]located{}
	var total int
	for _, l := range closure {
		img.Libs = append(img.Libs, l.Name)
		for _, s := range l.Symbols {
			byName[s.Name] = append(byName[s.Name], located{l, s})
			total += s.Size
		}
	}
	sort.Strings(img.Libs)

	// LTO: comdat copies are eliminated (their call sites were inlined;
	// the out-of-line copies are provably unreferenced across the whole
	// program).
	dropComdat := opts.LTO || opts.DCE

	include := func(loc located) {
		img.Bytes += loc.sym.Size
		img.PerLib[loc.lib.Name] += loc.sym.Size
		img.Symbols++
	}

	if !opts.DCE {
		for _, locs := range byName {
			for _, loc := range locs {
				if dropComdat && loc.sym.Kind == core.SymComdat {
					continue
				}
				include(loc)
			}
		}
		img.RemovedBytes = total - img.Bytes
		return img
	}

	// DCE: breadth-first reachability from the constructor roots over
	// symbol references; only reachable symbols are linked.
	reached := map[string]bool{}
	var queue []string
	for _, l := range closure {
		queue = append(queue, l.EntrySymbol())
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if reached[name] {
			continue
		}
		reached[name] = true
		for _, loc := range byName[name] {
			for _, ref := range loc.sym.Refs {
				if !reached[ref] {
					queue = append(queue, ref)
				}
			}
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !reached[n] {
			continue
		}
		for _, loc := range byName[n] {
			include(loc)
		}
	}
	img.RemovedBytes = total - img.Bytes
	return img
}

// KB renders bytes as the paper's KB/MB strings.
func KB(bytes int) string {
	if bytes >= 1024*1024 {
		return fmt.Sprintf("%.1fMB", float64(bytes)/(1024*1024))
	}
	return fmt.Sprintf("%.1fKB", float64(bytes)/1024)
}
