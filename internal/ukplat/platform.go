// Package ukplat is the platform abstraction layer of the Unikraft
// reproduction: the per-hypervisor/VMM glue (QEMU/KVM, QEMU microVM,
// Firecracker, Solo5, Xen, and the linuxu debug target) that the paper's
// Figure 4 shows at the bottom of the stack.
//
// Each platform model carries the measured VMM-side instantiation cost
// (the dominant part of total boot time — Fig 10) plus per-device and
// per-hypercall costs. Guest-side boot work is modelled in ukboot; the
// split matches the paper's measurement methodology: "we measure both
// the time taken by the VMM and the boot time of the actual unikernel"
// (§5.1).
package ukplat

import (
	"sort"
	"time"
)

// Platform describes one virtualization target.
type Platform struct {
	// Name as used by the build system ("kvm", "xen", "linuxu", ...).
	Name string
	// VMM is the monitor program ("qemu", "firecracker", ...).
	VMM string

	// VMMSetup is the monitor-side time from invocation to the first
	// guest instruction, calibrated from Fig 10.
	VMMSetup time.Duration
	// NICSetup is the additional monitor-side cost per attached NIC
	// (tap/vhost plumbing); Fig 10's "QEMU (1NIC)" bar.
	NICSetup time.Duration
	// NICQueueSetup is the additional monitor-side cost per extra NIC
	// queue pair beyond the first (multi-queue tap fds, one vhost worker
	// and irqfd/ioeventfd pair per queue). A fraction of NICSetup: the
	// tap/bridge plumbing exists, each queue only adds descriptor-ring
	// wiring.
	NICQueueSetup time.Duration
	// GuestExtra is additional guest-side boot latency inherent to the
	// platform (e.g. Firecracker's minimal-but-slower device model:
	// "boot times are slightly longer but do not exceed 1ms", §5.1).
	GuestExtra time.Duration

	// ForkSetup is the monitor-side cost of instantiating a clone from a
	// captured snapshot instead of cold-starting the monitor: mapping the
	// template's guest memory copy-on-write, restoring vCPU and device
	// state, and resuming. Orders of magnitude below VMMSetup — the
	// snapshot path skips machine model construction, firmware/ROM setup
	// and device probing (cf. Firecracker snapshot-restore and the uTNT
	// mass-instantiation numbers).
	ForkSetup time.Duration
	// ForkNICSetup is the additional monitor-side cost per NIC when
	// forking: the tap/vhost plumbing already exists in the template, so
	// only per-clone queue remapping remains.
	ForkNICSetup time.Duration

	// Hypercall is the guest->host transition cost for this platform
	// (virtqueue kick, Xen event channel, ...).
	Hypercall time.Duration

	// Mount9pfs is the boot-time cost of enabling the 9pfs device:
	// "0.3ms to the boot time of Unikraft VMs on KVM, and 2.7ms on Xen"
	// (§5.2).
	Mount9pfs time.Duration

	// MemGranularity is the unit the monitor allocates guest memory in;
	// minimum-memory probing (Fig 11) rounds up to it.
	MemGranularity int

	// HelloImageBytes is the size of the minimal helloworld image for
	// this platform (§3: "200KB in size on KVM and 40KB on Xen"); used
	// as the platform code's contribution to image-size accounting.
	HelloImageBytes int
}

// The platform catalog. Values cite Fig 10 unless noted.
var (
	// KVMQemu is stock QEMU/KVM: the slowest monitor (~38.4ms to boot a
	// helloworld, nearly all of it VMM time).
	KVMQemu = Platform{
		Name: "kvm", VMM: "qemu",
		VMMSetup:        38300 * time.Microsecond,
		NICSetup:        4000 * time.Microsecond,
		NICQueueSetup:   400 * time.Microsecond,
		ForkSetup:       4800 * time.Microsecond,
		ForkNICSetup:    500 * time.Microsecond,
		Hypercall:       1200 * time.Nanosecond,
		Mount9pfs:       300 * time.Microsecond,
		MemGranularity:  1 << 20,
		HelloImageBytes: 200 << 10,
	}

	// KVMQemuMicroVM is QEMU's stripped microvm machine type (~9.1ms).
	KVMQemuMicroVM = Platform{
		Name: "kvm", VMM: "qemu-microvm",
		VMMSetup:        9000 * time.Microsecond,
		NICSetup:        2500 * time.Microsecond,
		NICQueueSetup:   250 * time.Microsecond,
		ForkSetup:       1400 * time.Microsecond,
		ForkNICSetup:    300 * time.Microsecond,
		Hypercall:       1200 * time.Nanosecond,
		Mount9pfs:       300 * time.Microsecond,
		MemGranularity:  1 << 20,
		HelloImageBytes: 200 << 10,
	}

	// KVMFirecracker is AWS Firecracker [4] (~3.1ms total; guest side
	// slightly slower than QEMU's, staying under 1ms).
	KVMFirecracker = Platform{
		Name: "kvm", VMM: "firecracker",
		VMMSetup:        2400 * time.Microsecond,
		NICSetup:        1200 * time.Microsecond,
		NICQueueSetup:   120 * time.Microsecond,
		ForkSetup:       400 * time.Microsecond,
		ForkNICSetup:    150 * time.Microsecond,
		GuestExtra:      600 * time.Microsecond,
		Hypercall:       1500 * time.Nanosecond,
		Mount9pfs:       300 * time.Microsecond,
		MemGranularity:  1 << 20,
		HelloImageBytes: 200 << 10,
	}

	// Solo5 is the Solo5 unikernel monitor [78] (~3.1ms).
	Solo5 = Platform{
		Name: "solo5", VMM: "solo5-hvt",
		VMMSetup:        3050 * time.Microsecond,
		NICSetup:        800 * time.Microsecond,
		NICQueueSetup:   80 * time.Microsecond,
		ForkSetup:       520 * time.Microsecond,
		ForkNICSetup:    120 * time.Microsecond,
		Hypercall:       1000 * time.Nanosecond,
		Mount9pfs:       300 * time.Microsecond,
		MemGranularity:  1 << 20,
		HelloImageBytes: 200 << 10,
	}

	// Xen is the Xen hypervisor with the standard (xl) toolstack. The
	// paper leaves Xen throughput to future work but reports the 40KB
	// hello image (§3) and the 2.7ms 9pfs mount cost (§5.2).
	Xen = Platform{
		Name: "xen", VMM: "xl",
		VMMSetup:        125000 * time.Microsecond,
		NICSetup:        9000 * time.Microsecond,
		NICQueueSetup:   900 * time.Microsecond,
		ForkSetup:       14000 * time.Microsecond,
		ForkNICSetup:    1100 * time.Microsecond,
		Hypercall:       900 * time.Nanosecond,
		Mount9pfs:       2700 * time.Microsecond,
		MemGranularity:  1 << 20,
		HelloImageBytes: 40 << 10,
	}

	// LinuxUserspace is the linuxu debug target (§7 "Debugging"): the
	// unikernel runs as a Linux process, so there is no VMM at all and
	// syscall-priced host services.
	LinuxUserspace = Platform{
		Name: "linuxu", VMM: "none",
		VMMSetup:        500 * time.Microsecond, // fork+exec+ld.so
		ForkSetup:       80 * time.Microsecond,  // plain fork(), COW by the host kernel
		Hypercall:       62 * time.Nanosecond,   // a host syscall (Table 1)
		Mount9pfs:       50 * time.Microsecond,
		MemGranularity:  4 << 10,
		HelloImageBytes: 220 << 10,
	}
)

// All lists the platform catalog.
func All() []Platform {
	return []Platform{KVMQemu, KVMQemuMicroVM, KVMFirecracker, Solo5, Xen, LinuxUserspace}
}

// ByVMM returns the platform whose monitor matches name, or false.
func ByVMM(name string) (Platform, bool) {
	for _, p := range All() {
		if p.VMM == name {
			return p, true
		}
	}
	return Platform{}, false
}

// ByName returns the default platform entry for a platform name ("kvm"
// maps to the stock QEMU monitor), or false. Several VMMs can serve one
// platform; ByVMM selects among them.
func ByName(name string) (Platform, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Platform{}, false
}

// Names lists the distinct platform names, sorted.
func Names() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range All() {
		if !seen[p.Name] {
			seen[p.Name] = true
			out = append(out, p.Name)
		}
	}
	sort.Strings(out)
	return out
}

// VMMs lists the monitor names, sorted.
func VMMs() []string {
	out := make([]string, 0, len(All()))
	for _, p := range All() {
		out = append(out, p.VMM)
	}
	sort.Strings(out)
	return out
}

// MemRegion describes one guest-physical memory region handed to the
// boot code, mirroring ukplat's memregion API.
type MemRegion struct {
	Base  uint64
	Bytes int
	// Kind labels the region's use.
	Kind RegionKind
}

// RegionKind labels memory regions.
type RegionKind int

// Region kinds.
const (
	RegionKernel RegionKind = iota // image text/data/bss
	RegionHeap
	RegionStack
)

// Layout computes the guest-physical layout for an image of the given
// size in a VM with total memory totalBytes, following Unikraft's
// kvm-plat layout: image at 1MiB, stack at the top, heap in between.
func Layout(imageBytes, totalBytes, stackBytes int) []MemRegion {
	const imageBase = 1 << 20
	heapBase := uint64(imageBase + imageBytes)
	heapBytes := totalBytes - imageBytes - stackBytes - imageBase
	if heapBytes < 0 {
		heapBytes = 0
	}
	return []MemRegion{
		{Base: imageBase, Bytes: imageBytes, Kind: RegionKernel},
		{Base: heapBase, Bytes: heapBytes, Kind: RegionHeap},
		{Base: heapBase + uint64(heapBytes), Bytes: stackBytes, Kind: RegionStack},
	}
}
