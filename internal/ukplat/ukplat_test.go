package ukplat

import (
	"testing"
	"time"
)

func TestCatalog(t *testing.T) {
	if len(All()) != 6 {
		t.Fatalf("platforms = %d", len(All()))
	}
	// Fig 10's VMM ordering: firecracker < solo5 < microvm < qemu < xen.
	order := []Platform{KVMFirecracker, Solo5, KVMQemuMicroVM, KVMQemu, Xen}
	for i := 1; i < len(order); i++ {
		if order[i].VMMSetup <= order[i-1].VMMSetup {
			t.Errorf("%s (%v) not slower than %s (%v)",
				order[i].VMM, order[i].VMMSetup, order[i-1].VMM, order[i-1].VMMSetup)
		}
	}
	// §5.2: Xen's 9pfs mount is ~9x KVM's.
	if Xen.Mount9pfs != 2700*time.Microsecond || KVMQemu.Mount9pfs != 300*time.Microsecond {
		t.Errorf("9pfs costs: xen=%v kvm=%v", Xen.Mount9pfs, KVMQemu.Mount9pfs)
	}
	// §3: hello is 200KB on KVM, 40KB on Xen.
	if KVMQemu.HelloImageBytes <= Xen.HelloImageBytes {
		t.Error("xen hello image not smaller")
	}
}

func TestByVMM(t *testing.T) {
	p, ok := ByVMM("firecracker")
	if !ok || p.Name != "kvm" {
		t.Fatalf("ByVMM(firecracker) = %+v, %v", p, ok)
	}
	if _, ok := ByVMM("vmware"); ok {
		t.Fatal("unknown VMM found")
	}
}

func TestByNameAndListings(t *testing.T) {
	p, ok := ByName("kvm")
	if !ok || p.VMM != "qemu" {
		t.Fatalf("ByName(kvm) = %+v, %v; want the stock QEMU entry", p, ok)
	}
	if _, ok := ByName("hyperv"); ok {
		t.Fatal("unknown platform found")
	}
	names := Names()
	want := []string{"kvm", "linuxu", "solo5", "xen"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	if vmms := VMMs(); len(vmms) != len(All()) {
		t.Errorf("VMMs() = %v", vmms)
	}
}

func TestLayout(t *testing.T) {
	regions := Layout(1<<20 /*image*/, 64<<20 /*total*/, 64<<10 /*stack*/)
	if len(regions) != 3 {
		t.Fatalf("regions = %d", len(regions))
	}
	var kernel, heap, stack MemRegion
	for _, r := range regions {
		switch r.Kind {
		case RegionKernel:
			kernel = r
		case RegionHeap:
			heap = r
		case RegionStack:
			stack = r
		}
	}
	if kernel.Base != 1<<20 {
		t.Errorf("kernel at %#x, want 1MiB", kernel.Base)
	}
	if heap.Base != kernel.Base+uint64(kernel.Bytes) {
		t.Error("heap not after kernel")
	}
	if stack.Base != heap.Base+uint64(heap.Bytes) {
		t.Error("stack not after heap")
	}
	total := kernel.Bytes + heap.Bytes + stack.Bytes + 1<<20
	if total != 64<<20 {
		t.Errorf("layout covers %d of %d", total, 64<<20)
	}
	// Degenerate: tiny VM -> zero-size heap, not negative.
	small := Layout(8<<20, 4<<20, 64<<10)
	for _, r := range small {
		if r.Kind == RegionHeap && r.Bytes != 0 {
			t.Errorf("heap bytes = %d in undersized VM", r.Bytes)
		}
	}
}
