package sim

import "time"

// Loop is the discrete-event scheduler contract shared by the two
// engines: the hierarchical timer wheel (EventLoop, the production
// engine) and the binary heap (HeapLoop, the reference engine kept for
// differential testing and as the perf baseline). Both dispatch in
// exactly the same total order — ascending (timestamp, seq) — so a
// program replayed on either engine produces an identical trace; the
// differential harness in this package proves it.
type Loop interface {
	// Now reports the loop's current virtual time: the timestamp of
	// the event being (or last) dispatched.
	Now() time.Duration
	// Len reports the number of pending events.
	Len() int
	// Dispatched reports the total number of events dispatched since
	// the loop was created. It is deterministic — identical across
	// engines for the same program — which is what the engine
	// benchmark divides wall-clock by.
	Dispatched() uint64
	// At schedules fn to run at virtual time t. Times before Now are
	// clamped to Now, so a callback scheduling follow-up work
	// "immediately" cannot move time backwards.
	At(t time.Duration, fn func(now time.Duration))
	// After schedules fn to run d after Now (negative d clamps to 0).
	After(d time.Duration, fn func(now time.Duration))
	// ScheduleAt is At for a reusable Handler — the allocation-free
	// fast path. The handler must stay valid (and its state untouched
	// by the owner) until it fires; one handler instance must not be
	// scheduled twice concurrently.
	ScheduleAt(t time.Duration, h Handler)
	// ScheduleAfter is After for a reusable Handler.
	ScheduleAfter(d time.Duration, h Handler)
	// Peek reports the timestamp of the earliest pending event without
	// dispatching it. The fault engine uses it to run a loop only up
	// to a fail-stop cutoff: step while Peek ≤ T, then account
	// everything still pending as lost.
	Peek() (time.Duration, bool)
	// Step dispatches the earliest pending event, advancing Now to its
	// timestamp. It reports whether an event was dispatched.
	Step() bool
	// Run dispatches events in timestamp order until none remain,
	// including events the callbacks themselves schedule.
	Run()
}

// Handler is the allocation-free event target: hot paths embed a
// reusable struct implementing Fire and pass its pointer to
// ScheduleAt/ScheduleAfter, instead of allocating a fresh closure per
// event. Storing the pointer in the queue entry's interface field does
// not allocate, so a steady-state schedule/dispatch cycle is zero
// allocations.
type Handler interface {
	Fire(now time.Duration)
}

// HandlerFunc adapts a plain function to Handler. Converting once and
// rescheduling the same Handler value keeps the hot path
// allocation-free; converting per schedule allocates like After does.
type HandlerFunc func(now time.Duration)

// Fire implements Handler.
func (f HandlerFunc) Fire(now time.Duration) { f(now) }

// event is one queue entry: 32 bytes, two pointer words. Keeping it
// small matters more for the wheel than the heap — cascades copy events
// between levels, so entry size multiplies directly into memmove and
// write-barrier traffic on the replay path. Closure targets are boxed
// as HandlerFunc (pointer-shaped, so the conversion itself does not
// allocate) instead of carrying a second target field.
type event struct {
	at  time.Duration
	seq uint64
	h   Handler
}

// eventLess is the one total order both engines dispatch in: ascending
// timestamp, ties broken by ascending sequence number (scheduling
// order). seq is unique, so this is a strict total order and any
// correct sort of it — stable or not — is deterministic.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// schedClock is the single schedule path both engines share: virtual
// now, the clamp of past timestamps to now, and the strictly increasing
// sequence number that breaks same-instant ties. Every public schedule
// method (At/After/ScheduleAt/ScheduleAfter, wheel or heap) funnels
// through admit, so clamp and tie-break logic cannot drift between
// engines or between the closure and Handler paths.
type schedClock struct {
	now        time.Duration
	seq        uint64
	dispatched uint64
}

// Now reports current virtual time.
func (c *schedClock) Now() time.Duration { return c.now }

// Dispatched reports total events dispatched.
func (c *schedClock) Dispatched() uint64 { return c.dispatched }

// admit turns a requested timestamp plus a target into a queue entry:
// clamps t to now and allocates the tie-break seq.
func (c *schedClock) admit(t time.Duration, h Handler) event {
	if t < c.now {
		t = c.now
	}
	c.seq++
	return event{at: t, seq: c.seq, h: h}
}

// delay converts a relative delay into an absolute timestamp, clamping
// negative delays to "now" (a regression against the historical
// behaviour where each call site open-coded the clamp).
func (c *schedClock) delay(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	return c.now + d
}

// fire dispatches one admitted event: advances now and invokes the
// target. The caller has already removed e from its queue.
func (c *schedClock) fire(e event) {
	c.now = e.at
	c.dispatched++
	e.h.Fire(e.at)
}

// DispatchRecord is one entry of a RecordingLoop's trace: the virtual
// time an event fired at and the label it was scheduled with.
type DispatchRecord struct {
	At    time.Duration
	Label int64
}

// RecordingLoop wraps any Loop and appends a (timestamp, label) record
// for every labelled event it dispatches. The differential harness
// replays the same labelled program through a heap-backed and a
// wheel-backed RecordingLoop and asserts the traces are identical —
// equal labels in equal order at equal times means the engines agree on
// the full (at, seq) dispatch order.
type RecordingLoop struct {
	Loop
	// Trace accumulates dispatch records in dispatch order.
	Trace []DispatchRecord
}

// NewRecordingLoop wraps l.
func NewRecordingLoop(l Loop) *RecordingLoop { return &RecordingLoop{Loop: l} }

// Record schedules a labelled event at t. When it fires, (fire-time,
// label) is appended to Trace and then fn — if non-nil — runs, so
// programs can schedule labelled follow-ups from inside callbacks.
func (r *RecordingLoop) Record(t time.Duration, label int64, fn func(now time.Duration)) {
	r.Loop.At(t, func(now time.Duration) {
		r.Trace = append(r.Trace, DispatchRecord{At: now, Label: label})
		if fn != nil {
			fn(now)
		}
	})
}

// RecordAfter is Record with a delay relative to Now.
func (r *RecordingLoop) RecordAfter(d time.Duration, label int64, fn func(now time.Duration)) {
	r.Loop.After(d, func(now time.Duration) {
		r.Trace = append(r.Trace, DispatchRecord{At: now, Label: label})
		if fn != nil {
			fn(now)
		}
	})
}

var (
	_ Loop = (*EventLoop)(nil)
	_ Loop = (*HeapLoop)(nil)
	_ Loop = (*RecordingLoop)(nil)
)
