package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(0) … fn(n-1) on a bounded pool of worker
// goroutines (at most GOMAXPROCS) and returns when all calls have
// finished. It is the harness's one concurrency primitive: callers keep
// determinism by having each index write only its own result slot and
// then merging in index order after ParallelFor returns — goroutine
// scheduling decides nothing observable. The cluster layer runs
// independent host loops with it, the pool layer independent shard
// loops and instance boots; each simulated loop itself stays strictly
// single-goroutine.
//
// Indices are claimed from a shared counter, so unequal work per index
// load-balances instead of convoying behind a static partition.
func ParallelFor(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
