package sim

import "time"

// HeapLoop is the original binary-heap event loop, kept as the
// reference engine: O(log n) schedule and dispatch, trivially correct
// by construction. The production engine is the timer wheel (EventLoop)
// — the heap survives so the differential harness can replay every
// program through both and assert identical dispatch traces, and so the
// engine benchmark has an honest baseline to measure the wheel against.
type HeapLoop struct {
	schedClock
	h eventHeap
}

// NewHeapLoop returns an empty heap-backed loop at virtual time zero.
func NewHeapLoop() *HeapLoop { return &HeapLoop{} }

// Len reports the number of pending events.
func (l *HeapLoop) Len() int { return l.h.len() }

// At schedules fn to run at virtual time t (clamped to Now).
func (l *HeapLoop) At(t time.Duration, fn func(now time.Duration)) {
	l.h.push(l.admit(t, HandlerFunc(fn)))
}

// After schedules fn to run d after Now.
func (l *HeapLoop) After(d time.Duration, fn func(now time.Duration)) {
	l.h.push(l.admit(l.delay(d), HandlerFunc(fn)))
}

// ScheduleAt is At for a reusable Handler.
func (l *HeapLoop) ScheduleAt(t time.Duration, h Handler) {
	l.h.push(l.admit(t, h))
}

// ScheduleAfter is After for a reusable Handler.
func (l *HeapLoop) ScheduleAfter(d time.Duration, h Handler) {
	l.h.push(l.admit(l.delay(d), h))
}

// Peek reports the earliest pending timestamp without dispatching.
func (l *HeapLoop) Peek() (time.Duration, bool) {
	if l.h.len() == 0 {
		return 0, false
	}
	return l.h.min().at, true
}

// Step dispatches the earliest pending event.
func (l *HeapLoop) Step() bool {
	if l.h.len() == 0 {
		return false
	}
	l.fire(l.h.pop())
	return true
}

// Run dispatches until no events remain.
func (l *HeapLoop) Run() {
	for l.Step() {
	}
}
