package sim

// eventHeap is a hand-rolled binary min-heap of events ordered by
// eventLess, over a plain slice rather than container/heap: the serving
// experiments push and pop millions of events per run, and avoiding the
// interface boxing keeps the queue out of the profile. It backs the
// HeapLoop reference engine and the timer wheel's two escape hatches
// (the current-instant spill queue and the far-future overflow queue).
type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

// min returns the root without removing it. Call only when non-empty.
func (h *eventHeap) min() event { return h.ev[0] }

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h.ev[i], h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev[n] = event{}
	h.ev = h.ev[:n]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && eventLess(h.ev[left], h.ev[smallest]) {
			smallest = left
		}
		if right < n && eventLess(h.ev[right], h.ev[smallest]) {
			smallest = right
		}
		if smallest == i {
			break
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
	return top
}
