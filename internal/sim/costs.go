package sim

import "time"

// Costs is the calibrated cost table for a simulated machine. Every
// constant that originates in the paper cites its source; the remainder
// are engineering estimates chosen so that derived results land in the
// paper's reported ranges (see EXPERIMENTS.md for paper-vs-measured).
//
// All values are CPU cycles at 3.6 GHz unless stated otherwise.
type Costs struct {
	// FunctionCall is the cost of a no-op function call.
	// Table 1: 4.0 cycles (1.11 ns).
	FunctionCall uint64

	// UnikraftSyscall is a Unikraft system call with run-time translation
	// through the syscall shim. Table 1: 84.0 cycles (23.33 ns).
	UnikraftSyscall uint64

	// LinuxSyscall is a Linux/KVM system call with default mitigations
	// (KPTI etc.). Table 1: 222.0 cycles (61.67 ns).
	LinuxSyscall uint64

	// LinuxSyscallNoMitig is a Linux/KVM system call with mitigations
	// disabled. Table 1: 154.0 cycles (42.78 ns).
	LinuxSyscallNoMitig uint64

	// ContextSwitch is a guest-internal thread context switch
	// (register save/restore plus run-queue manipulation).
	ContextSwitch uint64

	// PerByteCopy is the per-byte cost of a memory copy (roughly 16
	// bytes/cycle on a modern core with wide loads).
	PerByteCopyNum, PerByteCopyDen uint64

	// VMExit is the cost of a VM exit + re-entry (virtqueue kick, I/O
	// port access). Literature value ~1-2us on KVM; we use 1.2us.
	VMExit uint64

	// PageTableEntryInit is the per-4KiB-page cost of populating a page
	// table entry during dynamic boot-time initialization. Calibrated so
	// that Fig 21's dynamic series reproduces (32MB→46us ... 3GB→114us
	// over a static floor of 29us).
	PageTableEntryInit uint64

	// StaticPTBoot is the fixed boot cost with a pre-initialized,
	// statically linked page table (Fig 21: 29us for 1GB static).
	StaticPTBoot uint64
}

// DefaultCosts returns the cost table calibrated against the paper's
// i7-9700K testbed.
func DefaultCosts() Costs {
	return Costs{
		FunctionCall:        4,   // Table 1
		UnikraftSyscall:     84,  // Table 1
		LinuxSyscall:        222, // Table 1
		LinuxSyscallNoMitig: 154, // Table 1
		ContextSwitch:       600, // ~167ns, typical in-guest switch
		PerByteCopyNum:      1,
		PerByteCopyDen:      16,
		VMExit:              4320, // 1.2us at 3.6GHz
		// Fig 21: dynamic 3GB-32MB spans ~68us over ~778k pages
		// => ~0.31 cycles/page at ns scale; we charge per-page below.
		PageTableEntryInit: 120, // ~33ns per 4KiB PTE write+bookkeeping, amortized per 512-entry table
		StaticPTBoot:       104_400,
	}
}

// CopyCost returns the cycle cost of copying n bytes.
func (c Costs) CopyCost(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64(n)*c.PerByteCopyNum/c.PerByteCopyDen + 1
}

// Machine bundles the pieces of one simulated computer: its CPU, cost
// table and deterministic random source. Higher layers (boot, devices,
// apps) carry a *Machine and charge their costs through it.
type Machine struct {
	CPU   *CPU
	Costs Costs
	Rand  *Rand
}

// NewMachine builds a machine with the default 3.6 GHz CPU and cost
// table, seeded deterministically.
func NewMachine() *Machine {
	return &Machine{
		CPU:   NewCPU(0),
		Costs: DefaultCosts(),
		Rand:  NewRand(0x5eed_0f_0ff1ce),
	}
}

// NewMachineWithSeed builds a machine like NewMachine but with its
// random source seeded from seed. Fleets of simulated instances (the
// ukpool serving layer) give each instance a distinct deterministic
// seed so per-instance clocks stay independent yet runs reproduce.
func NewMachineWithSeed(seed uint64) *Machine {
	m := NewMachine()
	m.Rand.Seed(seed)
	return m
}

// Charge advances the machine clock by n cycles.
func (m *Machine) Charge(n uint64) { m.CPU.Advance(n) }

// ChargeDuration advances the machine clock by a wall-clock duration.
func (m *Machine) ChargeDuration(d time.Duration) { m.CPU.AdvanceDuration(d) }

// ChargeCopy advances the clock by the cost of copying n bytes.
func (m *Machine) ChargeCopy(n int) { m.CPU.Advance(m.Costs.CopyCost(n)) }
