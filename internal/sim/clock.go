// Package sim provides the virtual-time substrate underneath the Unikraft
// reproduction: a cycle-accurate virtual CPU clock, the calibrated cost
// tables taken from the paper, and a deterministic random source.
//
// Everything above this package (allocators, schedulers, network stack,
// filesystems, applications) runs real algorithms; only the passage of
// time is simulated, by advancing a CPU cycle counter with costs that are
// either algorithmic (bytes copied, descriptors walked) or calibrated
// from the paper's own microbenchmarks (Table 1, Figure 10, §5.2).
package sim

import (
	"fmt"
	"time"
)

// DefaultHz is the clock rate of the paper's evaluation machine, an Intel
// i7-9700K at 3.6 GHz (§5, "Base Evaluation").
const DefaultHz = 3_600_000_000

// CPU is a virtual processor: a monotonically increasing cycle counter at
// a fixed clock rate. It is the single source of time for a simulated
// machine; all micro-libraries charge their costs to it.
//
// CPU is not safe for concurrent use; a simulated machine is single-core,
// matching the paper's single-core evaluation setup (§5: "pinning a CPU
// core to the VM").
type CPU struct {
	// Hz is the clock rate in cycles per second.
	Hz uint64

	cycles uint64
}

// NewCPU returns a CPU running at the given clock rate. A rate of 0
// selects DefaultHz.
func NewCPU(hz uint64) *CPU {
	if hz == 0 {
		hz = DefaultHz
	}
	return &CPU{Hz: hz}
}

// Advance charges n cycles to the clock.
func (c *CPU) Advance(n uint64) {
	c.cycles += n
}

// AdvanceDuration charges a wall-clock duration, converted to cycles at
// the CPU's clock rate.
func (c *CPU) AdvanceDuration(d time.Duration) {
	if d <= 0 {
		return
	}
	c.cycles += uint64(float64(d) * float64(c.Hz) / float64(time.Second))
}

// Cycles reports the total cycles elapsed since the CPU was created.
func (c *CPU) Cycles() uint64 { return c.cycles }

// Now reports elapsed virtual time.
func (c *CPU) Now() time.Duration {
	return c.Duration(c.cycles)
}

// Duration converts a cycle count into wall time at the CPU's clock rate.
func (c *CPU) Duration(cycles uint64) time.Duration {
	return time.Duration(float64(cycles) / float64(c.Hz) * float64(time.Second))
}

// ToCycles converts a duration into cycles at the CPU's clock rate.
func (c *CPU) ToCycles(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	return uint64(float64(d) * float64(c.Hz) / float64(time.Second))
}

// Reset zeroes the cycle counter. Experiments use it between runs so each
// measurement starts from a clean clock.
func (c *CPU) Reset() { c.cycles = 0 }

// Stopwatch measures an interval of virtual time on a CPU.
type Stopwatch struct {
	cpu   *CPU
	start uint64
}

// StartWatch begins measuring virtual time on cpu.
func StartWatch(cpu *CPU) Stopwatch {
	return Stopwatch{cpu: cpu, start: cpu.Cycles()}
}

// Cycles reports cycles elapsed since the watch was started.
func (s Stopwatch) Cycles() uint64 { return s.cpu.Cycles() - s.start }

// Elapsed reports virtual time elapsed since the watch was started.
func (s Stopwatch) Elapsed() time.Duration { return s.cpu.Duration(s.Cycles()) }

// String implements fmt.Stringer for debugging output.
func (c *CPU) String() string {
	return fmt.Sprintf("cpu(%.2fGHz, %v elapsed)", float64(c.Hz)/1e9, c.Now())
}
