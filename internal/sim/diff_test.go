package sim

import (
	"testing"
	"time"
)

// engines returns a fresh instance of each event-loop engine, keyed by
// name, for tests that must hold on both.
func engines() map[string]Loop {
	return map[string]Loop{"wheel": NewEventLoop(), "heap": NewHeapLoop()}
}

// TestWheelMatchesHeapAcrossShapes is the differential harness: every
// schedule shape, under multiple seeds, replayed through the heap and
// the wheel must produce identical (timestamp, label) dispatch traces,
// and each trace must independently satisfy the scheduling invariants.
func TestWheelMatchesHeapAcrossShapes(t *testing.T) {
	shapes := DiffShapes()
	if len(shapes) < 50 {
		t.Fatalf("shape table has %d entries, the harness promises >= 50", len(shapes))
	}
	for _, s := range shapes {
		t.Run(s.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				wheel := NewRecordingLoop(NewEventLoop())
				wpb := PlaySchedule(wheel, seed, s)
				wheel.Run()
				heap := NewRecordingLoop(NewHeapLoop())
				hpb := PlaySchedule(heap, seed, s)
				heap.Run()
				if err := VerifyTrace(wheel.Trace, wpb); err != nil {
					t.Fatalf("seed %d: wheel invariants: %v", seed, err)
				}
				if err := VerifyTrace(heap.Trace, hpb); err != nil {
					t.Fatalf("seed %d: heap invariants: %v", seed, err)
				}
				if err := DiffTraces(heap.Trace, wheel.Trace); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if w, h := wheel.Dispatched(), heap.Dispatched(); w != h {
					t.Fatalf("seed %d: dispatched counts differ: wheel %d, heap %d", seed, w, h)
				}
			}
		})
	}
}

// TestScheduleClampUnified is the regression for the unified schedule
// path: all four public schedule methods, on both engines, clamp past
// targets (including negative After delays) to Now instead of moving
// time backwards, and preserve admission order among the clamped.
func TestScheduleClampUnified(t *testing.T) {
	for name, l := range engines() {
		t.Run(name, func(t *testing.T) {
			var order []int
			mark := func(id int, want time.Duration) func(time.Duration) {
				return func(now time.Duration) {
					if now != want {
						t.Errorf("event %d fired at %v, want %v", id, now, want)
					}
					order = append(order, id)
				}
			}
			l.At(10*time.Millisecond, func(now time.Duration) {
				// From inside a callback at t=10ms, every past target
				// must fire at exactly 10ms, in scheduling order.
				l.After(-5*time.Millisecond, mark(0, now))
				l.At(now-time.Second, mark(1, now))
				l.ScheduleAfter(-1, handlerFunc(mark(2, now)))
				l.ScheduleAt(-42, handlerFunc(mark(3, now)))
				l.After(0, mark(4, now))
			})
			l.Run()
			if l.Now() != 10*time.Millisecond {
				t.Errorf("Now = %v after clamped events, want 10ms", l.Now())
			}
			for i, id := range order {
				if i != id {
					t.Fatalf("clamped dispatch order = %v, want identity", order)
				}
			}
			if len(order) != 5 {
				t.Fatalf("dispatched %d clamped events, want 5", len(order))
			}
		})
	}
}

// TestPeekAfterLateEarlierEvent: Peek may advance the wheel's internal
// cursor to the next occupied slot; an event scheduled *after* that
// peek but *before* the peeked timestamp must still dispatch first.
func TestPeekAfterLateEarlierEvent(t *testing.T) {
	for name, l := range engines() {
		t.Run(name, func(t *testing.T) {
			var order []int
			l.At(time.Millisecond, func(time.Duration) { order = append(order, 1) })
			if at, ok := l.Peek(); !ok || at != time.Millisecond {
				t.Fatalf("Peek = %v, %v; want 1ms, true", at, ok)
			}
			l.At(500*time.Microsecond, func(time.Duration) { order = append(order, 0) })
			if at, ok := l.Peek(); !ok || at != 500*time.Microsecond {
				t.Fatalf("Peek after earlier insert = %v, %v; want 500µs, true", at, ok)
			}
			l.Run()
			if len(order) != 2 || order[0] != 0 || order[1] != 1 {
				t.Fatalf("dispatch order = %v, want [0 1]", order)
			}
			if _, ok := l.Peek(); ok {
				t.Error("Peek reported an event on a drained loop")
			}
		})
	}
}

// TestFarOverflowAndLapWrap drives the wheel through its two coarse
// edges deterministically: an event beyond WheelHorizon (far heap,
// drained back as the cursor approaches) and a level-3 placement whose
// slot position wraps behind the cursor (a top-level lap).
func TestFarOverflowAndLapWrap(t *testing.T) {
	wheel := NewRecordingLoop(NewEventLoop())
	heap := NewRecordingLoop(NewHeapLoop())
	program := func(r *RecordingLoop) {
		// Far overflow: past the wheel's span.
		r.Record(2*WheelHorizon, 0, nil)
		r.Record(WheelHorizon*3/4, 1, func(now time.Duration) {
			// From t=3/4 horizon, +1/2 horizon stays inside the span
			// but its top-level slot index wraps below the cursor's.
			r.Record(now+WheelHorizon/2, 2, nil)
			r.Record(now+time.Microsecond, 3, nil)
		})
		r.Record(time.Millisecond, 4, nil)
		r.Run()
	}
	program(wheel)
	program(heap)
	if err := DiffTraces(heap.Trace, wheel.Trace); err != nil {
		t.Fatal(err)
	}
	want := []int64{4, 1, 3, 2, 0}
	for i, rec := range wheel.Trace {
		if rec.Label != want[i] {
			t.Fatalf("dispatch labels = %v, want %v", wheel.Trace, want)
		}
	}
}

// TestLenTracksPending: Len counts scheduled-but-undispatched events on
// both engines, through scheduling, peeking and dispatching.
func TestLenTracksPending(t *testing.T) {
	for name, l := range engines() {
		t.Run(name, func(t *testing.T) {
			for i := 1; i <= 10; i++ {
				l.After(time.Duration(i)*time.Minute, func(time.Duration) {})
				if l.Len() != i {
					t.Fatalf("Len = %d after %d schedules", l.Len(), i)
				}
			}
			l.Peek()
			if l.Len() != 10 {
				t.Fatalf("Len = %d after Peek, want 10", l.Len())
			}
			for i := 9; l.Step(); i-- {
				if l.Len() != i {
					t.Fatalf("Len = %d, want %d", l.Len(), i)
				}
			}
			if l.Len() != 0 || l.Dispatched() != 10 {
				t.Fatalf("Len = %d, Dispatched = %d after drain", l.Len(), l.Dispatched())
			}
		})
	}
}
