package sim

import (
	"fmt"
	"time"
)

// WheelHorizon is how far ahead of its cursor the timer wheel spans;
// events beyond it overflow into the far heap. Exported so the
// differential harness can aim programs past it deliberately.
const WheelHorizon = time.Duration(wheelHorizonTicks << wheelTickBits)

// ScheduleShape parameterises one randomized schedule for the
// differential harness: a labelled program that is replayed, with the
// same seed, through a heap-backed and a wheel-backed RecordingLoop.
// The shapes aim at the wheel's edges — same-instant storms land many
// events in one slot, Horizon picks which wheel level absorbs the
// load, Past forces clamp-to-now, Far forces overflow and cascade, and
// Chain/Depth reschedule from inside callbacks while a slot batch is
// mid-dispatch.
type ScheduleShape struct {
	Name string
	// Initial independent events are scheduled up front, each at a
	// random time in [0, Horizon].
	Initial int
	// Burst extra copies of every initial event are scheduled at the
	// exact same instant (a same-instant storm).
	Burst int
	// Horizon bounds every random delay in the program.
	Horizon time.Duration
	// Chain follow-up events are scheduled from each event's own
	// callback, for Depth generations.
	Chain, Depth int
	// Past is the probability that a follow-up targets now-δ and must
	// be clamped to now.
	Past float64
	// Far redirects every 7th follow-up beyond WheelHorizon, into the
	// overflow heap.
	Far bool
}

// SchedulePlayback accumulates the ground truth for a schedule as it
// unfolds: Want[label] is the exact virtual time the event with that
// label must fire at (the requested time, after clamping). Labels are
// issued in admission order, so within one instant they must fire in
// strictly increasing label order.
type SchedulePlayback struct {
	Want []time.Duration
}

func (pb *SchedulePlayback) expect(at time.Duration) int64 {
	pb.Want = append(pb.Want, at)
	return int64(len(pb.Want) - 1)
}

// PlaySchedule installs the shape's initial events on r and returns
// the playback that fills in as r.Run() unfolds the program. The
// program is fully determined by (seed, shape) given the loop's
// dispatch order — replaying it on two engines that agree on the order
// consumes identical random draws and produces identical traces.
func PlaySchedule(r *RecordingLoop, seed uint64, s ScheduleShape) *SchedulePlayback {
	pb := &SchedulePlayback{}
	rng := NewRand(seed)
	delay := func() time.Duration {
		if s.Horizon <= 0 {
			return 0
		}
		return time.Duration(rng.Intn(int(s.Horizon) + 1))
	}
	var fire func(depth int) func(now time.Duration)
	fire = func(depth int) func(now time.Duration) {
		if depth <= 0 || s.Chain <= 0 {
			return nil
		}
		return func(now time.Duration) {
			for c := 0; c < s.Chain; c++ {
				d := delay()
				switch {
				case s.Past > 0 && rng.Bool(s.Past):
					// Requested in the past: must clamp to now.
					r.Record(now-d, pb.expect(now), fire(depth-1))
				case s.Far && len(pb.Want)%7 == 0:
					at := now + d + WheelHorizon + time.Minute
					r.Record(at, pb.expect(at), fire(depth-1))
				default:
					r.RecordAfter(d, pb.expect(now+d), fire(depth-1))
				}
			}
		}
	}
	for i := 0; i < s.Initial; i++ {
		at := delay()
		for j := 0; j <= s.Burst; j++ {
			r.Record(at, pb.expect(at), fire(s.Depth))
		}
	}
	return pb
}

// VerifyTrace checks a finished trace against its playback: every
// labelled event fired exactly once, exactly at its (clamped) requested
// time, never before an earlier timestamp, and in admission (label)
// order within each instant — the FIFO-within-an-instant and
// no-early-dispatch invariants of both engines.
func VerifyTrace(trace []DispatchRecord, pb *SchedulePlayback) error {
	if len(trace) != len(pb.Want) {
		return fmt.Errorf("dispatched %d events, scheduled %d", len(trace), len(pb.Want))
	}
	seen := make([]bool, len(pb.Want))
	for i, rec := range trace {
		if rec.Label < 0 || rec.Label >= int64(len(pb.Want)) {
			return fmt.Errorf("trace[%d]: unknown label %d", i, rec.Label)
		}
		if seen[rec.Label] {
			return fmt.Errorf("trace[%d]: label %d dispatched twice", i, rec.Label)
		}
		seen[rec.Label] = true
		if want := pb.Want[rec.Label]; rec.At != want {
			return fmt.Errorf("trace[%d]: label %d fired at %v, want exactly %v", i, rec.Label, rec.At, want)
		}
		if i > 0 {
			prev := trace[i-1]
			if rec.At < prev.At {
				return fmt.Errorf("trace[%d]: time moved backwards (%v after %v)", i, rec.At, prev.At)
			}
			if rec.At == prev.At && rec.Label <= prev.Label {
				return fmt.Errorf("trace[%d]: FIFO violated at %v (label %d after %d)", i, rec.At, rec.Label, prev.Label)
			}
		}
	}
	return nil
}

// DiffTraces compares two engines' traces for the same program and
// returns the first divergence, or nil if they are identical.
func DiffTraces(a, b []DispatchRecord) error {
	if len(a) != len(b) {
		return fmt.Errorf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("traces diverge at event %d: (%v, %d) vs (%v, %d)",
				i, a[i].At, a[i].Label, b[i].At, b[i].Label)
		}
	}
	return nil
}

// DiffShapes is the harness's schedule-shape table: a grid over wheel
// levels (via Horizon), same-instant storm sizes and
// reschedule-from-callback chains, plus handcrafted edge shapes. Every
// shape is replayed through both engines by the differential tests and
// by the engine experiment's identity check.
func DiffShapes() []ScheduleShape {
	horizons := []struct {
		name string
		d    time.Duration
		far  bool
	}{
		{"sub-tick", 2 * time.Microsecond, false}, // spill + level-0 adjacency
		{"level0", 200 * time.Microsecond, false}, // inside one level-0 window
		{"level1", 30 * time.Millisecond, false},  // level-1 cascades
		{"level2", 5 * time.Second, false},        // level-2 cascades
		{"deep", 40 * time.Minute, false},         // deep top-level spreads + lap wraps
		{"overflow", 3 * time.Hour, true},         // far heap + drains
	}
	chains := []struct {
		name         string
		chain, depth int
	}{
		{"flat", 0, 0},
		{"chain1x3", 1, 3},
		{"chain3x2", 3, 2},
	}
	var shapes []ScheduleShape
	for _, h := range horizons {
		for _, burst := range []int{0, 7, 63} {
			for _, c := range chains {
				shapes = append(shapes, ScheduleShape{
					Name:    fmt.Sprintf("%s/burst%d/%s", h.name, burst, c.name),
					Initial: 40, Burst: burst, Horizon: h.d,
					Chain: c.chain, Depth: c.depth,
					Past: 0.2, Far: h.far,
				})
			}
		}
	}
	return append(shapes,
		// Everything at one instant: a pure same-instant storm.
		ScheduleShape{Name: "storm/one-instant", Initial: 1, Burst: 511, Horizon: 0, Chain: 1, Depth: 1},
		// Every follow-up targets the past: clamp-to-now chains.
		ScheduleShape{Name: "clamp/all-past", Initial: 32, Burst: 3, Horizon: time.Millisecond, Chain: 2, Depth: 3, Past: 1},
		// Mostly far-future: overflow dominates the program.
		ScheduleShape{Name: "overflow/heavy", Initial: 64, Horizon: 10 * time.Hour, Chain: 1, Depth: 2, Far: true},
	)
}
