package sim

import "math"

// Rand is a small deterministic pseudo-random source (SplitMix64 seeding
// an xorshift128+ generator). Experiments must be reproducible run to
// run, so nothing in the tree uses math/rand's global state.
type Rand struct {
	s0, s1 uint64
}

// NewRand returns a generator seeded from seed via SplitMix64.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	// SplitMix64 to expand the seed into two non-zero words.
	next := func() uint64 {
		seed += 0x9E3779B97F4A7C15
		z := seed
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	r.s0, r.s1 = next(), next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
}

// Uint64 returns the next 64 random bits (xorshift128+).
func (r *Rand) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1), by inversion. Traffic generators divide by their arrival
// rate to draw Poisson inter-arrival gaps.
func (r *Rand) ExpFloat64() float64 {
	// 1-Float64() is in (0, 1], so the log is finite.
	return -math.Log(1 - r.Float64())
}
