package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewCPU(0)
	if c.Hz != DefaultHz {
		t.Fatalf("Hz = %d", c.Hz)
	}
	c.Advance(3_600_000)
	if got := c.Now(); got != time.Millisecond {
		t.Fatalf("Now = %v, want 1ms", got)
	}
	c.AdvanceDuration(time.Millisecond)
	if got := c.Cycles(); got != 7_200_000 {
		t.Fatalf("cycles = %d", got)
	}
	c.Reset()
	if c.Cycles() != 0 {
		t.Fatal("Reset did not zero")
	}
}

// TestCycleDurationRoundTrip property: ToCycles(Duration(n)) ~= n.
func TestCycleDurationRoundTrip(t *testing.T) {
	c := NewCPU(0)
	f := func(raw uint32) bool {
		n := uint64(raw)
		back := c.ToCycles(c.Duration(n))
		diff := int64(back) - int64(n)
		if diff < 0 {
			diff = -diff
		}
		return diff <= 4 // rounding slack at 3.6 cycles/ns
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStopwatch(t *testing.T) {
	cpu := NewCPU(0)
	cpu.Advance(100)
	w := StartWatch(cpu)
	cpu.Advance(250)
	if w.Cycles() != 250 {
		t.Fatalf("watch = %d", w.Cycles())
	}
}

func TestCostsTable1(t *testing.T) {
	c := DefaultCosts()
	// Table 1 exactly.
	if c.FunctionCall != 4 || c.UnikraftSyscall != 84 || c.LinuxSyscall != 222 || c.LinuxSyscallNoMitig != 154 {
		t.Fatalf("Table 1 constants wrong: %+v", c)
	}
	if c.CopyCost(0) != 0 {
		t.Fatal("zero copy should be free")
	}
	if c.CopyCost(1600) < 100 {
		t.Fatal("1600B copy implausibly cheap")
	}
}

func TestMachineCharges(t *testing.T) {
	m := NewMachine()
	m.Charge(10)
	m.ChargeCopy(160)
	m.ChargeDuration(time.Microsecond)
	want := uint64(10) + m.Costs.CopyCost(160) + 3600
	if got := m.CPU.Cycles(); got != want {
		t.Fatalf("cycles = %d, want %d", got, want)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(8)
	same := true
	a.Seed(7)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

// TestRandRanges property: Intn and Float64 stay in range.
func TestRandRanges(t *testing.T) {
	r := NewRand(42)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		fl := r.Float64()
		return v >= 0 && v < bound && fl >= 0 && fl < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}
