package sim

import (
	"fmt"
	"testing"
	"time"
)

// countHandler is the intrusive-event pattern the serving layer uses: a
// reusable struct scheduled by pointer, rescheduling itself.
type countHandler struct {
	loop Loop
	n    int
	left int
}

func (h *countHandler) Fire(now time.Duration) {
	h.n++
	if h.left > 0 {
		h.left--
		h.loop.ScheduleAfter(time.Microsecond, h)
	}
}

// benchLoop measures the handler fast path on one engine: schedule +
// dispatch with a reused handler must not allocate per event.
func benchLoop(b *testing.B, loop Loop) {
	h := &countHandler{loop: loop}
	// Warm the queue structures so growth is out of the measurement.
	loop.ScheduleAfter(0, h)
	loop.Run()
	b.ReportAllocs()
	b.ResetTimer()
	h.left = b.N
	loop.ScheduleAfter(0, h)
	loop.Run()
	if h.n < b.N {
		b.Fatalf("dispatched %d events, want >= %d", h.n, b.N)
	}
}

func BenchmarkEventLoop(b *testing.B) { benchLoop(b, NewEventLoop()) }
func BenchmarkHeapLoop(b *testing.B)  { benchLoop(b, NewHeapLoop()) }

// BenchmarkEnginePending measures both engines under a standing timer
// population — the regime the wheel exists for. N self-rescheduling
// timers stay pending at all times; the heap pays O(log N) per event
// while the wheel stays O(1).
func BenchmarkEnginePending(b *testing.B) {
	for _, engine := range []struct {
		name string
		mk   func() Loop
	}{
		{"wheel", func() Loop { return NewEventLoop() }},
		{"heap", func() Loop { return NewHeapLoop() }},
	} {
		for _, timers := range []int{1 << 10, 1 << 16} {
			b.Run(fmt.Sprintf("%s/timers=%d", engine.name, timers), func(b *testing.B) {
				loop := engine.mk()
				left := b.N
				var fire Handler
				fire = handlerFunc(func(now time.Duration) {
					if left > 0 {
						left--
						loop.ScheduleAfter(time.Duration(1+left%1024)*time.Microsecond, fire)
					}
				})
				for i := 0; i < timers; i++ {
					loop.ScheduleAfter(time.Duration(1+i%1024)*time.Microsecond, fire)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if !loop.Step() {
						b.Fatal("loop drained early")
					}
				}
			})
		}
	}
}

// BenchmarkEventLoopClosure is the legacy closure path, for comparison
// in benchstat output (it allocates one closure per event).
func BenchmarkEventLoopClosure(b *testing.B) {
	loop := NewEventLoop()
	n := 0
	var fire func(now time.Duration)
	left := b.N
	fire = func(now time.Duration) {
		n++
		if left > 0 {
			left--
			loop.After(time.Microsecond, fire)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	loop.After(0, fire)
	loop.Run()
	if n < b.N {
		b.Fatalf("dispatched %d events, want >= %d", n, b.N)
	}
}

// TestHandlerAndClosureInterleave: handler events and closure events
// share one timeline and dispatch in timestamp-then-seq order.
func TestHandlerAndClosureInterleave(t *testing.T) {
	loop := NewEventLoop()
	var order []int
	h := handlerFunc(func(now time.Duration) { order = append(order, 1) })
	loop.ScheduleAt(2*time.Millisecond, h)
	loop.At(1*time.Millisecond, func(now time.Duration) { order = append(order, 0) })
	loop.ScheduleAt(2*time.Millisecond, handlerFunc(func(now time.Duration) { order = append(order, 2) }))
	loop.At(3*time.Millisecond, func(now time.Duration) { order = append(order, 3) })
	loop.Run()
	for i, v := range order {
		if i != v {
			t.Fatalf("dispatch order = %v", order)
		}
	}
}

type handlerFunc func(now time.Duration)

func (f handlerFunc) Fire(now time.Duration) { f(now) }
