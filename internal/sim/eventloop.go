package sim

import "time"

// EventLoop is a deterministic discrete-event scheduler over virtual
// time. It is the substrate the serving layer (internal/ukpool) runs
// on: request arrivals, service completions and autoscaler ticks are
// events on one global timeline, while each instance's work is charged
// to its own independent CPU clock. Events at the same virtual instant
// run in scheduling order (a strictly increasing sequence number breaks
// ties), so a run is reproducible event for event.
//
// An EventLoop is single-goroutine: Step/Run must not be called
// concurrently, and callbacks run on the caller's goroutine.
type EventLoop struct {
	now  time.Duration
	seq  uint64
	heap []event
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func(now time.Duration)
	h   Handler
}

// Handler is the allocation-free event target: hot paths embed a
// reusable struct implementing Fire and pass its pointer to
// ScheduleAt/ScheduleAfter, instead of allocating a fresh closure per
// event. Storing the pointer in the heap entry's interface field does
// not allocate, so a steady-state schedule/dispatch cycle is zero
// allocations.
type Handler interface {
	Fire(now time.Duration)
}

// NewEventLoop returns an empty loop at virtual time zero.
func NewEventLoop() *EventLoop { return &EventLoop{} }

// Now reports the loop's current virtual time: the timestamp of the
// event being (or last) dispatched.
func (l *EventLoop) Now() time.Duration { return l.now }

// Len reports the number of pending events.
func (l *EventLoop) Len() int { return len(l.heap) }

// At schedules fn to run at virtual time t. Times before Now are
// clamped to Now, so a callback scheduling follow-up work "immediately"
// cannot move time backwards.
func (l *EventLoop) At(t time.Duration, fn func(now time.Duration)) {
	if t < l.now {
		t = l.now
	}
	l.seq++
	l.push(event{at: t, seq: l.seq, fn: fn})
}

// After schedules fn to run d after Now.
func (l *EventLoop) After(d time.Duration, fn func(now time.Duration)) {
	if d < 0 {
		d = 0
	}
	l.At(l.now+d, fn)
}

// ScheduleAt is At for a reusable Handler — the allocation-free fast
// path. The handler must stay valid (and its state untouched by the
// owner) until it fires; one handler instance must not be scheduled
// twice concurrently.
func (l *EventLoop) ScheduleAt(t time.Duration, h Handler) {
	if t < l.now {
		t = l.now
	}
	l.seq++
	l.push(event{at: t, seq: l.seq, h: h})
}

// ScheduleAfter is After for a reusable Handler.
func (l *EventLoop) ScheduleAfter(d time.Duration, h Handler) {
	if d < 0 {
		d = 0
	}
	l.ScheduleAt(l.now+d, h)
}

// Peek reports the timestamp of the earliest pending event without
// dispatching it. The fault engine uses it to run a loop only up to a
// fail-stop cutoff: step while Peek ≤ T, then account everything still
// pending as lost.
func (l *EventLoop) Peek() (time.Duration, bool) {
	if len(l.heap) == 0 {
		return 0, false
	}
	return l.heap[0].at, true
}

// Step dispatches the earliest pending event, advancing Now to its
// timestamp. It reports whether an event was dispatched.
func (l *EventLoop) Step() bool {
	if len(l.heap) == 0 {
		return false
	}
	e := l.pop()
	l.now = e.at
	if e.h != nil {
		e.h.Fire(e.at)
	} else {
		e.fn(e.at)
	}
	return true
}

// Run dispatches events in timestamp order until none remain,
// including events the callbacks themselves schedule.
func (l *EventLoop) Run() {
	for l.Step() {
	}
}

// The heap is hand-rolled over a plain slice rather than
// container/heap: the serving experiments push and pop millions of
// events per run, and avoiding the interface boxing keeps the loop out
// of the profile.

func (l *EventLoop) push(e event) {
	l.heap = append(l.heap, e)
	i := len(l.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !l.less(i, parent) {
			break
		}
		l.heap[i], l.heap[parent] = l.heap[parent], l.heap[i]
		i = parent
	}
}

func (l *EventLoop) pop() event {
	top := l.heap[0]
	n := len(l.heap) - 1
	l.heap[0] = l.heap[n]
	l.heap[n] = event{}
	l.heap = l.heap[:n]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && l.less(left, smallest) {
			smallest = left
		}
		if right < n && l.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		l.heap[i], l.heap[smallest] = l.heap[smallest], l.heap[i]
		i = smallest
	}
	return top
}

func (l *EventLoop) less(i, j int) bool {
	a, b := l.heap[i], l.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
