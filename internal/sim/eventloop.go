package sim

import (
	"math/bits"
	"slices"
	"time"
)

// EventLoop is a deterministic discrete-event scheduler over virtual
// time. It is the substrate the serving layer (internal/ukpool) runs
// on: request arrivals, service completions and autoscaler ticks are
// events on one global timeline, while each instance's work is charged
// to its own independent CPU clock. Events at the same virtual instant
// run in scheduling order (a strictly increasing sequence number breaks
// ties), so a run is reproducible event for event.
//
// Internally EventLoop is a hierarchical timer wheel, sized for
// 100M-event traces where the old binary heap's O(log n) per operation
// and cache-hostile sift paths were the harness ceiling:
//
//   - wheelLevels levels of wheelSlots slots each; a level-0 slot is
//     one tick (1<<wheelTickBits ns ≈ 66µs) wide, each level above is
//     wheelSlots× coarser, so the wheel spans ~6.5 virtual days
//     ahead of the cursor. Schedule is O(1): index a slot, append.
//   - per-level occupancy bitmaps let the cursor jump straight to the
//     next non-empty slot (bits.TrailingZeros64), so idle gaps cost
//     O(1) instead of O(gap).
//   - higher-level slots cascade into finer levels as the cursor
//     reaches them; each event is moved at most wheelLevels times, so
//     dispatch is amortised O(1).
//   - events beyond the wheel horizon overflow into a min-heap and are
//     drained back into the wheel as the cursor approaches them.
//   - a level-0 slot is dispatched as one batch: sorted once by
//     (at, seq), then drained in place with no per-event re-heapify.
//     Same-instant storms are a linear scan of one sorted slice.
//
// Dispatch order is exactly the heap engine's — ascending (at, seq) —
// which the differential harness in this package verifies; HeapLoop is
// the retained reference implementation.
//
// An EventLoop is single-goroutine: Step/Run must not be called
// concurrently, and callbacks run on the caller's goroutine.
type EventLoop struct {
	schedClock
	pending int

	// tick is the wheel cursor, in ticks (at >> wheelTickBits). It
	// only moves forward, and only to positions at or before the next
	// pending event; Now trails it, moving on dispatch.
	tick   int64
	levels [wheelLevels]wheelLevel

	// cur is the level-0 slot currently being dispatched, sorted by
	// (at, seq); curIdx the next entry to fire. spill holds events
	// admitted at or before the cursor's tick (same-instant follow-up
	// work, clamped past timestamps), interleaved with cur by (at,
	// seq) comparison at dispatch. far is the overflow queue for
	// events beyond the wheel horizon.
	cur    []event
	curIdx int
	spill  eventHeap
	far    eventHeap

	// free recycles drained slot buffers so steady-state scheduling
	// does not allocate.
	free [][]event
}

const (
	// wheelTickBits sets the level-0 batching granularity: 1<<16 ns ≈
	// 66µs. Resolution does not bound precision — dispatch order is
	// always exact (at, seq), with same-tick events interleaved through
	// the spill heap — it only sets how many events share a slot batch.
	// A coarse tick keeps trace-scale populations one cascade from
	// dispatch and amortises each cursor jump over a whole batch instead
	// of paying a bitmap scan per event.
	wheelTickBits = 16
	// wheelLevelBits gives wheelSlots = 2048 slots per level. Wide flat
	// levels beat narrow deep ones here: every extra level is one more
	// cascade copy per event, and with 11-bit levels a trace-scale
	// population (minutes of virtual time) is at most two cascades from
	// dispatch instead of three.
	wheelLevelBits = 11
	wheelSlots     = 1 << wheelLevelBits
	wheelSlotMask  = wheelSlots - 1
	wheelLevels    = 3
	// wheelHorizonTicks is the wheel's span: events further ahead of
	// the cursor than this overflow into the far heap. 1<<33 ticks ×
	// 66µs ≈ 6.5 virtual days.
	wheelHorizonTicks = int64(1) << (wheelLevels * wheelLevelBits)
)

// wheelLevel is one ring of slots plus its occupancy bitmap.
type wheelLevel struct {
	slots [wheelSlots][]event
	bits  [wheelSlots / 64]uint64
}

func (lv *wheelLevel) set(p int)   { lv.bits[p>>6] |= 1 << (p & 63) }
func (lv *wheelLevel) clear(p int) { lv.bits[p>>6] &^= 1 << (p & 63) }

// next reports the first occupied slot at position >= from, scanning
// only to the end of the ring (the caller handles window wrap via
// cascades, or a lap increment at the top level).
func (lv *wheelLevel) next(from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	w := from >> 6
	b := lv.bits[w] & (^uint64(0) << (from & 63))
	for {
		if b != 0 {
			return w<<6 + bits.TrailingZeros64(b), true
		}
		w++
		if w >= len(lv.bits) {
			return 0, false
		}
		b = lv.bits[w]
	}
}

// NewEventLoop returns an empty loop at virtual time zero.
func NewEventLoop() *EventLoop { return &EventLoop{} }

// Len reports the number of pending events.
func (l *EventLoop) Len() int { return l.pending }

// At schedules fn to run at virtual time t. Times before Now are
// clamped to Now, so a callback scheduling follow-up work "immediately"
// cannot move time backwards.
func (l *EventLoop) At(t time.Duration, fn func(now time.Duration)) {
	l.enqueue(l.admit(t, HandlerFunc(fn)))
}

// After schedules fn to run d after Now.
func (l *EventLoop) After(d time.Duration, fn func(now time.Duration)) {
	l.enqueue(l.admit(l.delay(d), HandlerFunc(fn)))
}

// ScheduleAt is At for a reusable Handler — the allocation-free fast
// path. The handler must stay valid (and its state untouched by the
// owner) until it fires; one handler instance must not be scheduled
// twice concurrently.
func (l *EventLoop) ScheduleAt(t time.Duration, h Handler) {
	l.enqueue(l.admit(t, h))
}

// ScheduleAfter is After for a reusable Handler.
func (l *EventLoop) ScheduleAfter(d time.Duration, h Handler) {
	l.enqueue(l.admit(l.delay(d), h))
}

func (l *EventLoop) enqueue(e event) {
	l.pending++
	l.place(e)
}

// place routes an admitted event to its queue: the spill heap if it is
// due at or before the cursor's tick, the finest wheel level that
// spans its distance otherwise, or the far heap beyond the horizon.
// Cascades re-place events with the cursor already advanced, so a
// cascade can only move events to finer levels — it never reorders
// (dispatch order is decided purely by (at, seq) comparison, never by
// queue membership).
func (l *EventLoop) place(e event) {
	t := int64(e.at >> wheelTickBits)
	delta := t - l.tick
	if delta <= 0 {
		l.spill.push(e)
		return
	}
	// The level spanning delta, straight from its bit length: level k
	// covers deltas below 1<<((k+1)*wheelLevelBits).
	k := (bits.Len64(uint64(delta)) - 1) / wheelLevelBits
	if k >= wheelLevels {
		l.far.push(e)
		return
	}
	lv := &l.levels[k]
	p := int((t >> (k * wheelLevelBits)) & wheelSlotMask)
	s := lv.slots[p]
	if len(s) == cap(s) {
		s = l.growBuf(s)
	}
	s = append(s, e)
	lv.slots[p] = s
	lv.set(p)
}

// growBuf returns b with room to append: a recycled buffer when b is
// nil, else a copy with geometrically larger capacity. Growth is
// deliberately steeper than the runtime's large-slice factor (~1.25x),
// which would quadruple the bytes moved and zeroed across a bulk load:
// 2x while a slot is small, 4x once it holds a trace-scale batch, so
// cumulative allocation-zeroing plus copying stays under 1.7x the final
// buffer size. The outgrown buffer is dropped, not recycled: its
// contents are live in the copy, so clearing it for the free list would
// be pure overhead.
func (l *EventLoop) growBuf(b []event) []event {
	if b == nil {
		return l.getBuf()
	}
	f := 2
	if cap(b) >= 1024 {
		f = 4
	}
	nb := make([]event, len(b), f*cap(b))
	copy(nb, b)
	return nb
}

// refill makes the next dispatchable event visible in cur/spill,
// advancing the cursor across empty regions via the occupancy bitmaps.
// It reports false when no events are pending.
func (l *EventLoop) refill() bool {
	for {
		if l.curIdx < len(l.cur) || l.spill.len() > 0 {
			return true
		}
		if l.pending == 0 {
			return false
		}
		// Pull overflow events that have come within the horizon.
		l.drainFar()
		if l.spill.len() > 0 {
			return true
		}
		// Rest of the current level-0 window. This scan cannot cross a
		// coarser slot boundary (one window is exactly one level-1
		// slot), so no cascades come due on this path.
		if p, ok := l.levels[0].next(int(l.tick&wheelSlotMask) + 1); ok {
			l.loadSlot(p)
			continue
		}
		// Jump to the next occupied slot at any level.
		if l.jump() {
			continue
		}
		// Wheel empty: only far-future events remain. Move the cursor
		// to the earliest and let drainFar place it next pass.
		l.advanceTo(int64(l.far.min().at >> wheelTickBits))
	}
}

// loadSlot takes ownership of level-0 slot p as the current dispatch
// batch: one sort by (at, seq), then Step drains it in place. The
// previous batch's buffer is recycled.
func (l *EventLoop) loadSlot(p int) {
	lv := &l.levels[0]
	old := l.cur
	l.cur = lv.slots[p]
	lv.slots[p] = nil
	lv.clear(p)
	l.curIdx = 0
	sortEvents(l.cur)
	l.tick = l.tick&^int64(wheelSlotMask) | int64(p)
	l.putBuf(old)
}

// sortEvents orders a slot batch by (at, seq). Batch sorting is the
// wheel's per-event hot path (the heap pays per-event sift instead), so
// this is a specialized introsort with eventLess inlined — no
// comparator indirection, no generic machinery. seq is unique, so all
// keys are distinct: a plain median-of-three quicksort has no
// equal-element pathologies, and the depth bound keeps adversarial
// patterns at O(n log n) via the stdlib fallback.
func sortEvents(s []event) {
	quickEvents(s, 2*bits.Len(uint(len(s))))
}

func quickEvents(s []event, depth int) {
	for len(s) > 32 {
		if depth == 0 {
			slices.SortFunc(s, func(a, b event) int {
				if eventLess(a, b) {
					return -1
				}
				return 1
			})
			return
		}
		depth--
		// Median-of-three pivot, parked at the end for a Lomuto pass.
		m, hi := len(s)/2, len(s)-1
		if eventLess(s[m], s[0]) {
			s[0], s[m] = s[m], s[0]
		}
		if eventLess(s[hi], s[m]) {
			s[m], s[hi] = s[hi], s[m]
			if eventLess(s[m], s[0]) {
				s[0], s[m] = s[m], s[0]
			}
		}
		s[m], s[hi] = s[hi], s[m]
		pivot := s[hi]
		i := 0
		for j := 0; j < hi; j++ {
			if eventLess(s[j], pivot) {
				s[i], s[j] = s[j], s[i]
				i++
			}
		}
		s[i], s[hi] = s[hi], s[i]
		// Recurse into the smaller half, iterate on the larger.
		if i < len(s)-i {
			quickEvents(s[:i], depth)
			s = s[i+1:]
		} else {
			quickEvents(s[i+1:], depth)
			s = s[:i]
		}
	}
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i
		for j > 0 && eventLess(e, s[j-1]) {
			s[j] = s[j-1]
			j--
		}
		s[j] = e
	}
}

// jump advances the cursor to the occupied slot with the smallest base
// tick across all levels and consumes it (advanceTo cascades coarse
// slots, including the chosen one; a level-0 choice additionally loads
// the slot as the dispatch batch). A ring scan
// that finds nothing at or after the cursor's position wraps to the
// ring's next lap — a slot whose coarser bits differ from the
// cursor's, reachable only by crossing the level-above boundary, which
// may itself be empty. Every slot's base is a lower bound on its
// events' ticks, so jumping to the minimum base never passes a pending
// event. jump reports false only when the whole wheel is empty.
func (l *EventLoop) jump() bool {
	best := int64(-1)
	bestLevel, bestPos := 0, 0
	for k := 0; k < wheelLevels; k++ {
		shift := k * wheelLevelBits
		ringPos := int((l.tick >> shift) & wheelSlotMask)
		p, ok := l.levels[k].next(ringPos + 1)
		lap := int64(0)
		if !ok {
			if p, ok = l.levels[k].next(0); !ok {
				continue
			}
			lap = wheelSlots
		}
		base := (l.tick>>shift&^int64(wheelSlotMask) + lap + int64(p)) << shift
		if best < 0 || base < best {
			best, bestLevel, bestPos = base, k, p
		}
	}
	if best < 0 {
		return false
	}
	l.advanceTo(best)
	if bestLevel == 0 {
		l.loadSlot(bestPos)
	}
	return true
}

// advanceTo moves the cursor forward and cascades, coarsest first,
// every occupied coarse slot whose range now contains it. Without this
// an event could strand: when a finer slot shares its base tick with
// an occupied coarser slot (or the cursor lands mid-range of one), the
// cursor enters the coarse slot's range, and later ring scans —
// which start after the cursor's own position — would never see it.
// On ties jump prefers the finest level precisely so that the coarser
// slot at the same base is cascaded here before the finer one is
// dispatched, keeping (at, seq) order intact. A cascaded slot holding
// next-lap events is re-placed harmlessly: place routes by distance,
// so they land back in the wheel untouched in order terms.
func (l *EventLoop) advanceTo(t int64) {
	old := l.tick
	l.tick = t
	for k := wheelLevels - 1; k >= 1; k-- {
		shift := k * wheelLevelBits
		if old>>shift == t>>shift {
			continue
		}
		p := int((t >> shift) & wheelSlotMask)
		if l.levels[k].slots[p] != nil {
			l.cascade(k, p)
		}
	}
}

// cascade redistributes level k's slot p into finer levels (or spill,
// for events due exactly at the cursor's new tick).
func (l *EventLoop) cascade(k, p int) {
	lv := &l.levels[k]
	buf := lv.slots[p]
	lv.slots[p] = nil
	lv.clear(p)
	for _, e := range buf {
		l.place(e)
	}
	l.putBuf(buf)
}

// drainFar moves overflow events that are now within the horizon into
// the wheel.
func (l *EventLoop) drainFar() {
	for l.far.len() > 0 {
		if int64(l.far.min().at>>wheelTickBits)-l.tick >= wheelHorizonTicks {
			return
		}
		l.place(l.far.pop())
	}
}

func (l *EventLoop) getBuf() []event {
	if n := len(l.free); n > 0 {
		b := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		return b
	}
	return make([]event, 0, 8)
}

// putBuf recycles a consumed slot buffer. The single bulk clear here
// replaces per-event zeroing on the dispatch and cascade paths (one
// ranged write barrier instead of one per entry) and keeps recycled
// buffers from pinning dispatched handlers.
func (l *EventLoop) putBuf(b []event) {
	if cap(b) == 0 || len(l.free) >= wheelSlots {
		return
	}
	// Entries past len are zero already: growth allocations come zeroed
	// and this clear re-establishes the invariant for [0, len) before
	// the buffer re-enters the free list.
	clear(b)
	l.free = append(l.free, b[:0])
}

// Peek reports the timestamp of the earliest pending event without
// dispatching it. The fault engine uses it to run a loop only up to a
// fail-stop cutoff: step while Peek ≤ T, then account everything still
// pending as lost.
func (l *EventLoop) Peek() (time.Duration, bool) {
	if !l.refill() {
		return 0, false
	}
	if l.curIdx < len(l.cur) {
		at := l.cur[l.curIdx].at
		if l.spill.len() > 0 && l.spill.min().at < at {
			at = l.spill.min().at
		}
		return at, true
	}
	return l.spill.min().at, true
}

// Step dispatches the earliest pending event, advancing Now to its
// timestamp. It reports whether an event was dispatched.
func (l *EventLoop) Step() bool {
	if !l.refill() {
		return false
	}
	var e event
	if l.curIdx < len(l.cur) {
		if l.spill.len() > 0 && eventLess(l.spill.min(), l.cur[l.curIdx]) {
			e = l.spill.pop()
		} else {
			// Consumed entries stay in cur until the batch drains;
			// putBuf bulk-clears the buffer when the next batch loads.
			e = l.cur[l.curIdx]
			l.curIdx++
		}
	} else {
		e = l.spill.pop()
	}
	l.pending--
	l.fire(e)
	return true
}

// Run dispatches events in timestamp order until none remain,
// including events the callbacks themselves schedule.
func (l *EventLoop) Run() {
	for l.Step() {
	}
}
