package sim

import (
	"encoding/binary"
	"testing"
	"time"
)

// fuzzShape decodes a fuzz input into a (seed, shape) pair. The bytes
// map structurally: mutating the horizon byte walks the program across
// wheel levels and into the overflow heap, the burst byte grows
// same-instant storms, the chain bytes deepen reschedule-from-callback
// trees, and the past byte raises the clamp rate.
func fuzzShape(data []byte) (uint64, ScheduleShape) {
	var b [16]byte
	copy(b[:], data)
	return binary.LittleEndian.Uint64(b[:8]), ScheduleShape{
		Name:    "fuzz",
		Initial: 1 + int(b[9]%32),
		Burst:   int(b[10] % 32),
		Horizon: time.Duration(1) << (b[8] % 44),
		Chain:   int(b[11] % 3),
		Depth:   int(b[12] % 3),
		Past:    float64(b[13]%4) / 4,
		Far:     b[14]&1 == 1,
	}
}

// fuzzSeeds covers each wheel level, the overflow heap, same-instant
// storms and clamp-heavy chains; the checked-in corpus under
// testdata/fuzz mirrors them.
func fuzzSeeds(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 11, 8, 0, 1, 2, 0, 0, 0})  // level 0
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 21, 8, 7, 1, 2, 1, 0, 0})  // level 1
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 31, 8, 0, 2, 1, 0, 0, 0})  // level 2
	f.Add([]byte{4, 0, 0, 0, 0, 0, 0, 0, 41, 4, 31, 1, 1, 2, 0, 0}) // level 3 storms
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0, 43, 8, 3, 2, 2, 3, 1, 0})  // overflow + clamps
	f.Add([]byte{6, 0, 0, 0, 0, 0, 0, 0, 0, 1, 31, 1, 1, 0, 0, 0})  // one-instant storm
}

// FuzzWheelVsHeap replays a fuzz-decoded schedule through both engines
// and requires identical dispatch traces plus the per-engine
// invariants (exact fire times after clamping, FIFO within an instant,
// monotone time — so a cascade can never have reordered anything).
func FuzzWheelVsHeap(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		seed, shape := fuzzShape(data)
		wheel := NewRecordingLoop(NewEventLoop())
		wpb := PlaySchedule(wheel, seed, shape)
		wheel.Run()
		heap := NewRecordingLoop(NewHeapLoop())
		hpb := PlaySchedule(heap, seed, shape)
		heap.Run()
		if err := VerifyTrace(wheel.Trace, wpb); err != nil {
			t.Fatalf("wheel invariants: %v", err)
		}
		if err := VerifyTrace(heap.Trace, hpb); err != nil {
			t.Fatalf("heap invariants: %v", err)
		}
		if err := DiffTraces(heap.Trace, wheel.Trace); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzWheelInvariants exercises the wheel alone (more iterations per
// second than the differential target) against the trace invariants:
// no event before its timestamp, At before Now clamps to an exact
// fire-at-Now, FIFO within an instant, time never moves backwards.
func FuzzWheelInvariants(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		seed, shape := fuzzShape(data)
		wheel := NewRecordingLoop(NewEventLoop())
		pb := PlaySchedule(wheel, seed, shape)
		wheel.Run()
		if err := VerifyTrace(wheel.Trace, pb); err != nil {
			t.Fatal(err)
		}
		if wheel.Len() != 0 {
			t.Fatalf("loop reports %d pending after Run", wheel.Len())
		}
	})
}
