package unikraft

// Ablation benchmarks for the design choices the paper argues for:
// run-to-completion vs preemptive scheduling (§3.3), virtqueue kick
// batching and interrupt-vs-polling receive (§3.1), syscall-shim
// compile-time linking vs run-time translation (§4), and DCE/LTO
// contributions to image size (§3, Fig 8). Each reports the two sides of
// the trade-off as metrics from one run.

import (
	"testing"

	"unikraft/internal/netstack"
	"unikraft/internal/sim"
	"unikraft/internal/ukbuild"
	"unikraft/internal/uknetdev"
	"unikraft/internal/uksched"
	"unikraft/internal/ukshim"
)

// BenchmarkAblationSchedulerPolicy: the same CPU-bound workload under
// the cooperative and preemptive schedulers — the §3.3 jitter argument
// for run-to-completion images.
func BenchmarkAblationSchedulerPolicy(b *testing.B) {
	run := func(policy uksched.Policy) uint64 {
		m := sim.NewMachine()
		s := uksched.New(policy, m)
		defer s.Shutdown()
		s.SetTimeslice(36_000) // 10us quantum: a busy VNF-style guest
		for i := 0; i < 4; i++ {
			s.NewThread("worker", func(th *uksched.Thread) {
				for j := 0; j < 50; j++ {
					th.Charge(100_000) // 27.8us of packet work per batch
					th.Yield()
				}
			})
		}
		s.Run()
		return m.CPU.Cycles()
	}
	var coop, preempt uint64
	for i := 0; i < b.N; i++ {
		coop = run(uksched.Cooperative)
		preempt = run(uksched.Preemptive)
	}
	b.ReportMetric(float64(coop), "coop-cycles")
	b.ReportMetric(float64(preempt), "preempt-cycles")
	b.ReportMetric(float64(preempt-coop)/float64(coop)*100, "preempt-overhead-pct")
}

// BenchmarkAblationKickBatching: one virtqueue kick per packet versus
// one per burst — why uk_netdev_tx_burst takes arrays (§3.1).
func BenchmarkAblationKickBatching(b *testing.B) {
	send := func(burst int) uint64 {
		ma, mb := sim.NewMachine(), sim.NewMachine()
		dev, _, err := uknetdev.NewPair(ma, mb, uknetdev.VhostNet)
		if err != nil {
			b.Fatal(err)
		}
		pkts := make([]*uknetdev.Netbuf, burst)
		for i := range pkts {
			pkts[i] = uknetdev.NewNetbuf(0, 128)
			pkts[i].Len = 64
		}
		const total = 1024
		before := ma.CPU.Cycles()
		for sent := 0; sent < total; sent += burst {
			dev.TxBurst(0, pkts)
		}
		return ma.CPU.Cycles() - before
	}
	var perPacket, batched uint64
	for i := 0; i < b.N; i++ {
		perPacket = send(1)
		batched = send(32)
	}
	b.ReportMetric(float64(perPacket)/1024, "kick-per-pkt-cycles/pkt")
	b.ReportMetric(float64(batched)/1024, "kick-per-burst-cycles/pkt")
}

// BenchmarkAblationSyscallLinking: the §4 argument in one bench — the
// same syscall workload under compile-time linking (function calls),
// run-time translation (Unikraft binary compat) and a Linux trap.
func BenchmarkAblationSyscallLinking(b *testing.B) {
	cost := func(mode ukshim.Mode) uint64 {
		m := sim.NewMachine()
		sh := ukshim.New(m, mode)
		ukshim.RegisterProcessSyscalls(sh)
		before := m.CPU.Cycles()
		for i := 0; i < 1000; i++ {
			sh.Invoke(ukshim.SysGetpid, [6]uint64{})
		}
		return (m.CPU.Cycles() - before) / 1000
	}
	var linked, translated, linux uint64
	for i := 0; i < b.N; i++ {
		linked = cost(ukshim.ModeFunctionCall)
		translated = cost(ukshim.ModeUnikraftTrap)
		linux = cost(ukshim.ModeLinuxTrap)
	}
	b.ReportMetric(float64(linked), "compile-time-linked-cycles")
	b.ReportMetric(float64(translated), "runtime-translated-cycles")
	b.ReportMetric(float64(linux), "linux-trap-cycles")
}

// BenchmarkAblationLinkerPasses: isolate how much of the nginx image
// each optimization removes (the Fig 8 sweep as deltas).
func BenchmarkAblationLinkerPasses(b *testing.B) {
	rt := NewRuntime()
	var def, lto, dce int
	for i := 0; i < b.N; i++ {
		for _, c := range []struct {
			opts ukbuild.Options
			out  *int
		}{
			{ukbuild.Options{}, &def},
			{ukbuild.Options{LTO: true}, &lto},
			{ukbuild.Options{DCE: true}, &dce},
		} {
			img, err := rt.Build(NewSpec("nginx", WithPlatform(PlatformKVM),
				WithBuildFlags(c.opts.DCE, c.opts.LTO)))
			if err != nil {
				b.Fatal(err)
			}
			*c.out = img.Bytes
		}
	}
	b.ReportMetric(float64(def-lto)/1024, "lto-saves-KB")
	b.ReportMetric(float64(def-dce)/1024, "dce-saves-KB")
	b.ReportMetric(float64(dce)/1024, "final-KB")
}

// BenchmarkAblationSocketLayer: the per-request cost of each layer the
// §6.4 specialization peels away, measured as UDP echo cost through the
// socket API versus raw frames (Table 4's mechanism, isolated from app
// logic).
func BenchmarkAblationSocketLayer(b *testing.B) {
	var viaSockets, raw uint64
	for i := 0; i < b.N; i++ {
		// Socket path: one datagram through two full stacks.
		cm, sm := sim.NewMachine(), sim.NewMachine()
		cd, sd, err := uknetdev.NewPair(cm, sm, uknetdev.VhostUser)
		if err != nil {
			b.Fatal(err)
		}
		client := netstack.New(cm, cd, netstack.Config{Addr: netstack.IP(10, 0, 0, 1)})
		server := netstack.New(sm, sd, netstack.Config{Addr: netstack.IP(10, 0, 0, 2)})
		srv, err := server.BindUDP(9)
		if err != nil {
			b.Fatal(err)
		}
		cli, err := client.BindUDP(0)
		if err != nil {
			b.Fatal(err)
		}
		warm := func() {
			cli.SendTo(netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 9}, []byte("w"))
			netstack.Pump(client, server)
			srv.RecvFrom()
		}
		warm()
		before := sm.CPU.Cycles()
		for j := 0; j < 64; j++ {
			cli.SendTo(netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 9}, []byte("x"))
		}
		netstack.Pump(client, server)
		for {
			if _, ok := srv.RecvFrom(); !ok {
				break
			}
		}
		viaSockets = (sm.CPU.Cycles() - before) / 64

		// Raw path: the same 64 frames consumed straight off the ring.
		cm2, sm2 := sim.NewMachine(), sim.NewMachine()
		cd2, sd2, err := uknetdev.NewPair(cm2, sm2, uknetdev.VhostUser)
		if err != nil {
			b.Fatal(err)
		}
		frame := uknetdev.NewNetbuf(0, 128)
		frame.Len = 64
		for j := 0; j < 64; j++ {
			cd2.TxBurst(0, []*uknetdev.Netbuf{frame})
		}
		rx := make([]*uknetdev.Netbuf, 64)
		for j := range rx {
			rx[j] = uknetdev.NewNetbuf(0, 2048)
		}
		before = sm2.CPU.Cycles()
		sd2.RxBurst(0, rx)
		raw = (sm2.CPU.Cycles() - before) / 64
	}
	b.ReportMetric(float64(viaSockets), "socket-path-cycles/pkt")
	b.ReportMetric(float64(raw), "raw-path-cycles/pkt")
}
