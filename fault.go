package unikraft

import (
	"time"

	"unikraft/internal/ukfault"
	"unikraft/internal/ukpool"
)

// FaultPlan is a deterministic, virtual-time fault schedule for a
// Cluster.Serve run: fail-stop host crashes (with optional rejoin),
// link degradation (added delay, loss, partitions) and a per-request
// VM crash hazard. Plans are pure data — the same seed and plan
// against the same workload reproduce the same serve byte-for-byte,
// so a failover bug found in a report is replayable forever.
//
//	plan := unikraft.NewFaultPlan(42).
//	    CrashHost(2, 300*time.Millisecond).
//	    WithVMHazard(1e-4)
//	c, err := rt.NewCluster(spec, unikraft.WithHosts(8),
//	    unikraft.WithFaultPlan(plan))
type FaultPlan = ukfault.Plan

// NewFaultPlan starts an empty fault plan with the given seed. Chain
// CrashHost / CrashHostRejoin / DegradeLink / PartitionHost /
// WithVMHazard to populate it; an empty plan leaves Serve
// byte-identical to a fault-free run.
func NewFaultPlan(seed uint64) *FaultPlan { return ukfault.New(seed) }

// WithFaultPlan injects the fault plan into every Serve on the
// cluster. The front door gains priced health probes, timeout-based
// failure detection, retries with exponential backoff and admission
// control; crashed hosts lose their in-flight requests to the retry
// path and are replaced from standby via snapshot handoff. The plan's
// VM hazard is applied to every host's pool with a host-distinct
// sub-seed derived from the plan seed.
func WithFaultPlan(p *FaultPlan) ClusterOption {
	return func(c *clusterSettings) { c.faults = p }
}

// WithRetryPolicy bounds the front door's retransmission of lost
// forwards: at most limit attempts per request (default 3), backing
// off exponentially from backoff (default 250µs), and at most budget
// retries across the whole trace (default 0: unbounded). Requests
// exhausting either bound are reported Failed, never silently lost.
func WithRetryPolicy(limit int, backoff time.Duration, budget int) ClusterOption {
	return func(c *clusterSettings) {
		c.retryLimit = limit
		c.retryBackoff = backoff
		c.retryBudget = budget
	}
}

// WithShedWater sets the admission-control threshold as a multiple of
// the estimated per-request service time (default 4x the spill
// high-water). While the surviving hosts' backlog per core exceeds it,
// fresh arrivals are rejected at the front door — shed, accounted
// separately from failures — instead of queueing into a latency cliff.
func WithShedWater(mult float64) ClusterOption {
	return func(c *clusterSettings) { c.shedWater = mult }
}

// WithDeadline gives every request without a deadline of its own an
// end-to-end allowance of d from its arrival at the front door. The
// router drops requests whose deadline passes while they queue at the
// door (a cheap priced 504, counted Expired), and the deadline rides
// to the serving host, whose pool drops expired queue entries before
// charging any service time. Under overload this is the difference
// between a queue that wastes capacity on answers nobody is waiting
// for and one that spends every cycle on requests that can still
// succeed.
func WithDeadline(d time.Duration) ClusterOption {
	return func(c *clusterSettings) { c.deadline = d }
}

// WithAdmission arms the front door's adaptive admission controller
// with a queue-delay target: every evaluation window the router
// compares its estimated backlog-per-core delay against the target and
// sheds a proportional fraction of fresh arrivals when the delay
// exceeds it — delay-based control in the CoDel tradition, replacing
// the static shed threshold's cliff with a controller that holds the
// queue near the target at any overload ratio. Shedding is staged by
// priority class: batch traffic is sacrificed from the target up,
// interactive traffic only past three times the target.
func WithAdmission(target time.Duration) ClusterOption {
	return func(c *clusterSettings) { c.admitTarget = target }
}

// WithRetryThrottle arms the front door's retry token bucket: each
// successful forward earns ratio tokens (capped at burst; burst <= 0
// defaults to 50) and each retry of a lost forward spends one. When
// losses outpace successes the bucket runs dry and further retries are
// cut — counted Throttled, the request Failed — so aggregate retry
// traffic is bounded at ~ratio of successful traffic and a partition
// cannot ignite a retry storm.
func WithRetryThrottle(ratio, burst float64) ClusterOption {
	return func(c *clusterSettings) {
		c.retryRatio = ratio
		c.retryBurst = burst
	}
}

// WithBrownout makes every host's pool degrade before it drops: when a
// pool shard's queue is depth deep, requests are served in brownout
// mode — half the application cycles, no per-request attachment work —
// trading answer quality for drain rate (counted Browned). Degrade
// first, drop second is the overload playbook; the deadline and
// admission layers only see the load brownout could not absorb.
func WithBrownout(depth int) ClusterOption {
	return func(c *clusterSettings) {
		c.poolOpts = append(c.poolOpts, ukpool.WithBrownout(depth))
	}
}

// WithPoolCrashHazard gives every request served by the pool an
// independent probability of crashing its serving instance mid-request
// (partial service charged, instance restarted by fork, request
// retried). Draws are keyed on request identity, so shard counts and
// host placement don't change which requests crash.
func WithPoolCrashHazard(hazard float64, seed uint64) PoolOption {
	return ukpool.WithCrashHazard(hazard, seed)
}

// WithPoolCrashRetries caps how many times a crashed request is
// redispatched before it is reported failed (default 2).
func WithPoolCrashRetries(n int) PoolOption { return ukpool.WithCrashRetries(n) }

// WithPoolBreaker retires an instance after n consecutive mid-request
// crashes instead of restarting it again (default 3; the circuit
// breaker that stops a poisoned instance from eating retries).
func WithPoolBreaker(n int) PoolOption { return ukpool.WithBreaker(n) }

// WithPoolLatencySeries records a per-window latency histogram series
// (window d of virtual time) alongside the aggregate — what recovery-
// time analysis reads to find when p99 returns to its pre-fault band.
func WithPoolLatencySeries(d time.Duration) PoolOption {
	return ukpool.WithLatencySeries(d)
}
