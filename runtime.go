package unikraft

import (
	"fmt"
	"hash/fnv"
	"sync"

	"unikraft/internal/core"
	"unikraft/internal/experiments"
	"unikraft/internal/sim"
	"unikraft/internal/syscalls"
	"unikraft/internal/ukalloc"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukbuild"
	"unikraft/internal/ukcluster"
	"unikraft/internal/uknetdev"
	"unikraft/internal/ukplat"
)

// Runtime is the SDK's execution context: it owns the micro-library
// catalog builds resolve against and the simulated-machine factory boots
// run on. A Runtime is cheap to create, safe for concurrent use, and
// everything that used to be a string-keyed free function over hidden
// globals is a method on it:
//
//	rt := unikraft.NewRuntime()
//	img, err := rt.Build(spec)   // link an image
//	vm, err := rt.Boot(spec)     // build + boot, keep the VM
//	inst, err := rt.Run(spec)    // build + boot, keep both
type Runtime struct {
	catalog    *core.Catalog
	newMachine func() *sim.Machine

	// cached is the lazily built default catalog, invalidated when the
	// library registry's generation moves.
	mu        sync.Mutex
	cached    *core.Catalog
	cachedGen int64

	// snaps caches one boot template per SnapshotBoot spec, so repeated
	// Runtime.Boot/Run calls pay the full pipeline once and fork after.
	snapMu sync.Mutex
	snaps  map[string]*snapEntry
}

// snapEntry pairs a prevalidated boot context with the captured
// template snapshot forks clone from. The capture runs under the
// entry's own once, so a slow first template boot never serializes
// cache hits (or captures) for other specs behind the map lock.
type snapEntry struct {
	once sync.Once
	ctx  *ukboot.Context
	snap *ukboot.Snapshot
	err  error
}

// RuntimeOption configures a Runtime at construction.
type RuntimeOption func(*Runtime)

// WithCatalog pins the runtime to a fixed catalog instead of the default
// (which tracks RegisterLibrary calls).
func WithCatalog(c *core.Catalog) RuntimeOption {
	return func(rt *Runtime) { rt.catalog = c }
}

// WithMachineFactory substitutes the simulated-machine constructor —
// e.g. a machine with a different clock model.
func WithMachineFactory(f func() *sim.Machine) RuntimeOption {
	return func(rt *Runtime) { rt.newMachine = f }
}

// NewRuntime builds a Runtime over the calibrated default catalog and
// stock simulated machines.
func NewRuntime(opts ...RuntimeOption) *Runtime {
	rt := &Runtime{newMachine: sim.NewMachine}
	for _, opt := range opts {
		opt(rt)
	}
	return rt
}

// Catalog returns the catalog builds resolve against. Without
// WithCatalog it is the default catalog, cached and rebuilt only when
// RegisterLibrary changes the registry, so libraries registered after
// NewRuntime stay visible without paying catalog synthesis per build.
func (rt *Runtime) Catalog() *core.Catalog {
	if rt.catalog != nil {
		return rt.catalog
	}
	gen := core.CatalogGeneration()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.cached == nil || rt.cachedGen != gen {
		rt.cached = core.DefaultCatalog()
		rt.cachedGen = gen
	}
	return rt.cached
}

// Apps lists the registered application names, sorted.
func (rt *Runtime) Apps() []string { return core.AppNames() }

// RegisterApp adds an application profile to the app registry; see
// core.RegisterApp for validation rules. The registry is process-wide:
// every Runtime resolves specs against it.
func (rt *Runtime) RegisterApp(p AppProfile) error { return core.RegisterApp(p) }

// RegisterLibrary adds a custom micro-library to catalogs built after
// the call (process-wide, like RegisterApp). It errors on a runtime
// pinned with WithCatalog, where the registration could never become
// visible to this runtime's builds.
func (rt *Runtime) RegisterLibrary(name string, cfg LibraryConfig) error {
	if rt.catalog != nil {
		return fmt.Errorf("unikraft: RegisterLibrary(%s): runtime is pinned to a fixed catalog (WithCatalog); register before pinning or use a default runtime", name)
	}
	return core.RegisterLibrary(name, cfg)
}

// resolved is a Spec with every default filled in and every name
// checked against the catalogs.
type resolved struct {
	profile  core.AppProfile
	platform ukplat.Platform
	backend  string // ukalloc backend booting initializes
	mem      int
	build    ukbuild.Options
	rootFS   string // RootFS with the WithFiles default applied
}

// resolve validates s and fills defaults. All spec errors come from
// here, so Build/Boot/Run fail fast with the same precise messages as
// Validate.
func (rt *Runtime) resolve(s Spec) (resolved, error) {
	var r resolved
	if s.App == "" {
		return r, fmt.Errorf("unikraft: spec has no app (have %v)", core.AppNames())
	}
	profile, ok := core.AppByName(s.App)
	if !ok {
		return r, fmt.Errorf("unikraft: unknown app %q (have %v)", s.App, core.AppNames())
	}
	r.profile = profile

	r.platform = ukplat.KVMQemu
	switch {
	case s.VMM != "":
		p, ok := ukplat.ByVMM(s.VMM)
		if !ok {
			return r, fmt.Errorf("unikraft: unknown VMM %q (have %v)", s.VMM, ukplat.VMMs())
		}
		if s.Platform != "" && s.Platform != p.Name {
			return r, fmt.Errorf("unikraft: VMM %q runs on platform %q, not %q", s.VMM, p.Name, s.Platform)
		}
		r.platform = p
	case s.Platform != "":
		p, ok := ukplat.ByName(s.Platform)
		if !ok {
			return r, fmt.Errorf("unikraft: unknown platform %q (have %v)", s.Platform, ukplat.Names())
		}
		r.platform = p
	}

	alloc := s.Allocator
	if alloc == "" {
		alloc = profile.Allocator
	}
	backend, err := ukalloc.ResolveBackend(alloc)
	if err != nil {
		return r, fmt.Errorf("unikraft: %s: %w", s.App, err)
	}
	r.backend = backend
	// Normalize the profile to the catalog provider so images always
	// link the right ukalloc library, whether the spec or the profile
	// named the allocator by backend or provider name. Run-time-only
	// backends have no provider; they keep the profile's library in the
	// image and swap the heap at boot.
	if provider, ok := ukalloc.ProviderForBackend(backend); ok {
		r.profile.Allocator = provider
	}

	for _, lib := range s.ExtraLibs {
		if _, ok := rt.Catalog().Get(lib); ok {
			continue
		}
		// Boot-step names without a catalog library (e.g. "pthreads")
		// are valid too: they carry a calibrated constructor cost.
		if _, ok := ukboot.LibInitCost(lib); ok {
			continue
		}
		return r, fmt.Errorf("unikraft: unknown extra library %q (not in the catalog or the boot-cost table)", lib)
	}

	if s.TxKickBatch < 0 {
		return r, fmt.Errorf("unikraft: TX kick batch must not be negative, got %d (0 means kick per burst)", s.TxKickBatch)
	}
	if s.RxIRQBatch < 0 {
		return r, fmt.Errorf("unikraft: RX IRQ batch must not be negative, got %d (0 means interrupt per arrival)", s.RxIRQBatch)
	}
	r.rootFS = s.RootFS
	if r.rootFS == "" && len(s.Files) > 0 {
		r.rootFS = ukboot.RootRamfs
	}
	if !ukboot.ValidRootFS(r.rootFS) {
		return r, fmt.Errorf("unikraft: unknown root filesystem %q (have %v)", s.RootFS, ukboot.RootFSNames())
	}
	if s.PageCachePages < 0 {
		return r, fmt.Errorf("unikraft: page cache size must not be negative, got %d (0 disables)", s.PageCachePages)
	}
	if s.PageCachePages > 0 && r.rootFS != ukboot.RootRamfs && r.rootFS != ukboot.Root9pfs {
		return r, fmt.Errorf("unikraft: page cache requires a vfscore-backed root filesystem (ramfs or 9pfs), spec has %q", r.rootFS)
	}
	for path := range s.Files {
		if path == "" || path[0] != '/' {
			return r, fmt.Errorf("unikraft: file paths must be absolute, got %q", path)
		}
	}
	if _, err := ukcluster.PolicyByName(s.Affinity); err != nil {
		return r, fmt.Errorf("unikraft: %w", err)
	}
	switch s.Placement {
	case "", "spread", "pack":
	default:
		return r, fmt.Errorf("unikraft: unknown placement %q (have spread, pack)", s.Placement)
	}
	if s.VCPUs < 0 || s.VCPUs > MaxVCPUs {
		return r, fmt.Errorf("unikraft: vCPU count must be 0..%d, got %d (0 means one core)", MaxVCPUs, s.VCPUs)
	}
	if s.NetQueues < 0 || s.NetQueues > MaxNetQueues {
		return r, fmt.Errorf("unikraft: NIC queue count must be 0..%d, got %d (0 means one queue pair)", MaxNetQueues, s.NetQueues)
	}
	if len(s.badProfiles) > 0 {
		return r, fmt.Errorf("unikraft: unknown profile %q (have %v)", s.badProfiles[0], Profiles())
	}
	if s.MemBytes < 0 {
		return r, fmt.Errorf("unikraft: memory must not be negative, got %d (0 means the 64 MiB default)", s.MemBytes)
	}
	if s.StackBytes < 0 {
		return r, fmt.Errorf("unikraft: stack size must not be negative, got %d (0 means the 64 KiB default)", s.StackBytes)
	}
	r.mem = s.MemBytes
	if r.mem == 0 {
		r.mem = 64 << 20
	}
	r.build = ukbuild.Options{DCE: s.DCE, LTO: s.LTO}
	return r, nil
}

// Validate checks a spec against the registries without building
// anything: unknown apps, platforms, VMMs, platform/VMM disagreement,
// unknown allocators, unknown extra libraries and negative memory all
// fail with precise errors (zero memory means the 64 MiB default).
func (rt *Runtime) Validate(s Spec) error {
	_, err := rt.resolve(s)
	return err
}

// Build resolves and links the image a spec describes.
func (rt *Runtime) Build(s Spec) (*Image, error) {
	r, err := rt.resolve(s)
	if err != nil {
		return nil, err
	}
	return ukbuild.Build(rt.Catalog(), r.profile, r.platform.Name, r.build)
}

// Closure resolves the spec's micro-library closure and the API-provider
// selection it implies, for dependency inspection (cmd/ukdeps).
func (rt *Runtime) Closure(s Spec) ([]*core.Library, map[string]string, error) {
	r, err := rt.resolve(s)
	if err != nil {
		return nil, nil, err
	}
	providers := ukbuild.Providers(r.profile, r.platform.Name)
	closure, err := rt.Catalog().Closure([]string{r.profile.Lib}, providers)
	if err != nil {
		return nil, nil, err
	}
	return closure, providers, nil
}

// Instance is a built and booted unikernel: the linked image plus the
// live VM with its boot report.
type Instance struct {
	Image *Image
	VM    *VM
}

// Close releases the instance's VM resources.
func (in *Instance) Close() {
	if in != nil && in.VM != nil {
		in.VM.Close()
	}
}

// bootConfig turns a resolved spec plus its linked image size into the
// ukboot pipeline configuration. Run boots it once; NewPool builds a
// reusable ukboot.Context from it and boots fleets.
func (rt *Runtime) bootConfig(r resolved, s Spec, imageBytes int) ukboot.Config {
	cfg := ukboot.Config{
		Platform:   r.platform,
		MemBytes:   r.mem,
		StackBytes: s.StackBytes,
		ImageBytes: imageBytes,
		PTMode:     ukboot.PTStatic,
		Allocator:  r.backend,
		NICs:       r.profile.NICs,
		Mount9pfs:  s.Mount9pfs,
	}
	if s.DynamicPageTable {
		cfg.PTMode = ukboot.PTDynamic
	}
	cfg.Libs = append(ukboot.ProfileLibs(r.profile.NICs, r.profile.Scheduler), s.ExtraLibs...)
	cfg.ParallelInit = s.InitStages
	cfg.SnapshotBoot = s.SnapshotBoot
	cfg.VCPUs = s.VCPUs
	cfg.NetQueues = s.NetQueues
	cfg.RootFS = r.rootFS
	cfg.Files = s.Files
	cfg.PageCachePages = s.PageCachePages
	return cfg
}

// Close releases runtime-owned resources: the cached boot templates
// behind SnapshotBoot specs (one VM-sized arena each). The runtime
// stays usable — a later SnapshotBoot call simply re-captures its
// template. Instances and pools handed out earlier are unaffected;
// clones only share immutable state.
func (rt *Runtime) Close() {
	rt.snapMu.Lock()
	snaps := rt.snaps
	rt.snaps = nil
	rt.snapMu.Unlock()
	for _, e := range snaps {
		// Do blocks until an in-flight first capture finishes, so a
		// template booted concurrently with Close is still released.
		e.once.Do(func() {})
		if e.snap != nil {
			e.snap.Close()
		}
	}
}

// snapshotFor returns the cached template snapshot for a boot config,
// booting and capturing it on first use. The key renders the fully
// resolved config — not the spec, whose String rounds memory to MiB
// and whose rendering would go stale when RegisterApp/RegisterLibrary
// changes what it resolves to. Two specs share a template exactly when
// they boot identically (e.g. differing only in data-path knobs), and
// a registry change that alters the resolved profile re-captures.
// Close releases the cache.
func (rt *Runtime) snapshotFor(cfg ukboot.Config) (*snapEntry, error) {
	// Files can hold an entire site; rendering its bytes into the key
	// would make every fork pay O(site) formatting. Key on a digest of
	// the (sorted) contents instead, with Files elided from the render.
	filesKey := ""
	renderCfg := cfg
	if len(cfg.Files) > 0 {
		h := fnv.New64a()
		for _, p := range ukboot.SortedFilePaths(cfg.Files) {
			h.Write([]byte(p))
			h.Write([]byte{0})
			h.Write(cfg.Files[p])
			h.Write([]byte{0})
		}
		filesKey = fmt.Sprintf("|files=%d:%x", len(cfg.Files), h.Sum64())
		renderCfg.Files = nil // elide contents from the render only
	}
	key := fmt.Sprintf("%+v%s", renderCfg, filesKey)
	for {
		rt.snapMu.Lock()
		e, ok := rt.snaps[key]
		if !ok {
			e = &snapEntry{}
			if rt.snaps == nil {
				rt.snaps = map[string]*snapEntry{}
			}
			rt.snaps[key] = e
		}
		rt.snapMu.Unlock()
		e.once.Do(func() {
			ctx, err := ukboot.NewContext(cfg)
			if err != nil {
				e.err = err
				return
			}
			snap, err := ctx.Snapshot(rt.newMachine())
			if err != nil {
				e.err = err
				return
			}
			e.ctx, e.snap = ctx, snap
		})
		if e.err != nil {
			return nil, e.err
		}
		if e.ctx != nil {
			return e, nil
		}
		// A concurrent Close consumed the entry's once before the
		// capture ran and dropped it from the map; retry with a fresh
		// entry, as the Close contract promises a re-capture.
	}
}

// Run builds the spec's image and boots it on a fresh simulated machine
// — the whole pipeline in one call. For SnapshotBoot specs the first
// Run boots and captures a template; every later Run (and pool cold
// boot) forks it copy-on-write instead of replaying the pipeline. The
// caller must Close the instance.
func (rt *Runtime) Run(s Spec) (*Instance, error) {
	r, err := rt.resolve(s)
	if err != nil {
		return nil, err
	}
	img, err := ukbuild.Build(rt.Catalog(), r.profile, r.platform.Name, r.build)
	if err != nil {
		return nil, err
	}
	cfg := rt.bootConfig(r, s, img.Bytes)
	if s.SnapshotBoot {
		e, err := rt.snapshotFor(cfg)
		if err != nil {
			return nil, err
		}
		vm, err := e.ctx.Fork(rt.newMachine(), e.snap)
		if err != nil {
			return nil, err
		}
		return &Instance{Image: img, VM: vm}, nil
	}
	vm, err := ukboot.Boot(rt.newMachine(), cfg)
	if err != nil {
		return nil, err
	}
	return &Instance{Image: img, VM: vm}, nil
}

// Boot is Run for callers that only need the VM. The caller must Close
// it.
func (rt *Runtime) Boot(s Spec) (*VM, error) {
	inst, err := rt.Run(s)
	if err != nil {
		return nil, err
	}
	return inst.VM, nil
}

// appMemFloors are the startup heap demands used by minimum-memory
// probing (Fig 11).
var appMemFloors = map[string]int{
	"helloworld": 256 << 10,
	"nginx":      2 << 20,
	"redis":      4 << 20,
	"sqlite":     1 << 20,
}

// MinMemory probes the minimum guest memory at which the spec boots and
// the application's startup allocations fit (Fig 11). The spec's
// MemBytes is ignored; its build flags and allocator are honored.
func (rt *Runtime) MinMemory(s Spec) (int, error) {
	r, err := rt.resolve(s)
	if err != nil {
		return 0, err
	}
	img, err := ukbuild.Build(rt.Catalog(), r.profile, r.platform.Name, r.build)
	if err != nil {
		return 0, err
	}
	floor := appMemFloors[s.App]
	if floor == 0 {
		floor = 1 << 20
	}
	return ukboot.MinMemory(ukboot.Config{
		Platform:   r.platform,
		ImageBytes: img.Bytes,
		PTMode:     ukboot.PTStatic,
		Allocator:  r.backend,
		// Forked clones need their private page-table reserve to fit.
		SnapshotBoot: s.SnapshotBoot,
	}, floor)
}

// NetTuning returns the uknetdev kick/IRQ coalescing configuration a
// spec implies, for callers wiring their own device topologies
// (uknetdev.NewTunedPair) from a declarative Spec.
func (rt *Runtime) NetTuning(s Spec) (uknetdev.Tuning, error) {
	if _, err := rt.resolve(s); err != nil {
		return uknetdev.Tuning{}, err
	}
	return uknetdev.Tuning{TxKickBatch: s.TxKickBatch, RxIRQBatch: s.RxIRQBatch}, nil
}

// env adapts the runtime for the experiment harness.
func (rt *Runtime) env() *experiments.Env {
	return &experiments.Env{Catalog: rt.Catalog(), NewMachine: rt.newMachine}
}

// Experiments lists the regenerable tables/figures.
func (rt *Runtime) Experiments() []string { return experiments.IDs() }

// ExperimentTitle returns an experiment's display title.
func (rt *Runtime) ExperimentTitle(id string) string { return experiments.Title(id) }

// RunExperiment regenerates one table/figure against this runtime.
func (rt *Runtime) RunExperiment(id string) (*ExperimentResult, error) {
	return experiments.Run(rt.env(), id)
}

// RunAllExperiments regenerates the whole evaluation concurrently and
// returns the results in ID order (nil slots for failures, with their
// errors joined).
func (rt *Runtime) RunAllExperiments() ([]*ExperimentResult, error) {
	return experiments.RunAll(rt.env())
}

// SyscallAnalysis runs the §4.1 binary-compatibility analysis of the
// top-30 server applications against the supported syscall set.
func (rt *Runtime) SyscallAnalysis() *syscalls.Analysis {
	return syscalls.Analyze(syscalls.Top30Apps(), syscalls.SupportedNumbers)
}
