package unikraft

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the documents whose relative links CI's docs job keeps
// honest.
var docFiles = []string{"README.md", "ARCHITECTURE.md", "EXPERIMENTS.md"}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocRelativeLinks fails on any relative markdown link whose target
// does not exist in the repository — the docs analog of the build
// breaking on a dangling import.
func TestDocRelativeLinks(t *testing.T) {
	for _, doc := range docFiles {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v (every file in docFiles must exist)", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			// Drop a fragment; a bare fragment links within the file.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			path := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s: broken relative link %q (%v)", doc, m[1], err)
			}
		}
	}
}
